#include "serve/match_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/guard.h"
#include "core/quantize.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/router.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace dader::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Process-wide serving metrics (all MatchService instances share the
// series; the per-instance ServeStats atomics remain the per-service view).
struct ServeMetrics {
  obs::Counter* admitted;
  obs::Counter* shed;
  obs::Counter* completed;
  obs::Counter* deadline_expired;
  obs::Counter* degraded;
  obs::Counter* invalid;
  obs::Counter* primary_failures;
  obs::Counter* retries;
  obs::Counter* reload_success;
  obs::Counter* reload_rollback;
  obs::Histogram* queue_ms;
  obs::Histogram* total_ms;
  obs::Histogram* forward_ms;
  obs::Histogram* batch_size;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Default();
    ServeMetrics m;
    m.admitted = reg.GetCounter("serve.requests.admitted.total",
                                "Requests accepted into the admission queue",
                                "requests");
    m.shed = reg.GetCounter("serve.requests.shed.total",
                            "Requests rejected because the queue was full",
                            "requests");
    m.completed = reg.GetCounter("serve.requests.completed.total",
                                 "Requests answered with an OK response",
                                 "requests");
    m.deadline_expired =
        reg.GetCounter("serve.requests.deadline_expired.total",
                       "Requests answered DeadlineExceeded", "requests");
    m.degraded = reg.GetCounter(
        "serve.requests.degraded.total",
        "OK responses served by the fallback/heuristic path", "requests");
    m.invalid = reg.GetCounter("serve.requests.invalid.total",
                               "Requests rejected for schema arity mismatch",
                               "requests");
    m.primary_failures =
        reg.GetCounter("serve.primary.failures.total",
                       "Primary forward-pass failures", "failures");
    m.retries = reg.GetCounter("serve.primary.retries.total",
                               "Primary forward retry attempts actually run",
                               "retries");
    m.reload_success = reg.GetCounter("serve.reload.success.total",
                                      "Successful hot model reloads", "reloads");
    m.reload_rollback =
        reg.GetCounter("serve.reload.rollback.total",
                       "Model reloads rejected and rolled back", "reloads");
    m.queue_ms = reg.GetHistogram("serve.latency.queue_ms",
                                  "Time from admission to batch dequeue", "ms");
    m.total_ms = reg.GetHistogram("serve.latency.total_ms",
                                  "Time from admission to response", "ms");
    m.forward_ms = reg.GetHistogram("serve.latency.forward_ms",
                                    "Model forward-pass duration", "ms");
    m.batch_size = reg.GetHistogram(
        "serve.batch.size", "Live requests per worker batch", "requests",
        std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128});
    return m;
  }();
  return metrics;
}

// Quantized-serving metrics (`serve.quant.*`, docs/OBSERVABILITY.md),
// shared across services like ServeMetrics.
struct QuantServeMetrics {
  obs::Counter* calibrations;
  obs::Counter* rollbacks;
  obs::Histogram* agreement;
};

const QuantServeMetrics& QuantMetrics() {
  static const QuantServeMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Default();
    QuantServeMetrics m;
    m.calibrations = reg.GetCounter(
        "serve.quant.calibrations.total",
        "Accepted serving-side int8 calibrations (model now serves int8)",
        "calibrations");
    m.rollbacks = reg.GetCounter(
        "serve.quant.rollbacks.total",
        "Int8 calibrations rolled back to fp32 (agreement gate or error)",
        "rollbacks");
    m.agreement = reg.GetHistogram(
        "serve.quant.agreement",
        "Fp32-vs-int8 label agreement of accepted calibrations", "fraction",
        std::vector<double>{0.9, 0.95, 0.98, 0.99, 0.995, 0.999, 1.0});
    return m;
  }();
  return metrics;
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

Clock::time_point DeadlineFor(const MatchRequest& request,
                              const ServeConfig& config,
                              Clock::time_point now) {
  const double budget_ms =
      request.deadline_ms > 0.0 ? request.deadline_ms : config.default_deadline_ms;
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(budget_ms));
}

std::vector<std::string> RecordTokens(const data::Record& record) {
  std::vector<std::string> tokens;
  for (const std::string& value : record.values()) {
    for (std::string& t : text::WordTokenize(value)) {
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

// Synthetic canary pairs: one near-duplicate and one clear non-match per
// schema pair, so a reloaded model must at least produce finite outputs on
// both ends of the similarity spectrum.
data::ERDataset BuildCanary(const data::Schema& schema_a,
                            const data::Schema& schema_b) {
  data::ERDataset canary("serve-canary", "serve", schema_a, schema_b);
  auto fill = [](const data::Schema& schema, const std::string& token) {
    std::vector<std::string> values;
    values.reserve(schema.size());
    for (const std::string& attr : schema.attributes()) {
      values.push_back(attr + " " + token);
    }
    return data::Record(std::move(values));
  };
  canary.AddPair({fill(schema_a, "canary alpha"), fill(schema_b, "canary alpha"),
                  /*label=*/-1});
  canary.AddPair({fill(schema_a, "canary alpha"), fill(schema_b, "omega probe"),
                  /*label=*/-1});
  return canary;
}

}  // namespace

float HeuristicMatchProbability(const data::Record& a, const data::Record& b) {
  const std::vector<std::string> ta = RecordTokens(a);
  const std::vector<std::string> tb = RecordTokens(b);
  if (ta.empty() && tb.empty()) return 0.5f;
  const std::unordered_set<std::string> sa(ta.begin(), ta.end());
  const std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const std::string& t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - inter;
  const double jaccard =
      uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  // Logistic calibration centered where token overlap starts implying a
  // match for the benchmark serializations; steepness keeps the extremes
  // close to 0/1 so downstream thresholds behave.
  const double p = 1.0 / (1.0 + std::exp(-8.0 * (jaccard - 0.35)));
  return static_cast<float>(p);
}

MatchService::MatchService(ServeConfig config, data::Schema schema_a,
                           data::Schema schema_b, core::DaModel primary,
                           std::unique_ptr<core::DaModel> fallback)
    : config_(std::move(config)),
      schema_a_(std::move(schema_a)),
      schema_b_(std::move(schema_b)),
      primary_(std::move(primary)),
      fallback_(std::move(fallback)),
      canary_(BuildCanary(schema_a_, schema_b_)),
      cache_(config_.feature_cache_capacity > 0
                 ? std::make_unique<FeatureCache>(
                       config_.feature_cache_capacity)
                 : nullptr),
      adaptive_(config_.adaptive, std::max<int64_t>(1, config_.max_batch),
                config_.shard_index),
      queue_(config_.queue_capacity, config_.shard_index),
      breaker_(config_.breaker) {
  DADER_CHECK(primary_.extractor != nullptr);
  DADER_CHECK(primary_.matcher != nullptr);
  if (config_.shard_index >= 0) {
    auto& reg = obs::MetricsRegistry::Default();
    const std::string shard = std::to_string(config_.shard_index);
    shard_requests_ = reg.GetCounter(
        obs::LabeledName("serve.shard.requests.total", "shard", shard),
        "Requests admitted on the shard", "requests");
    shard_degraded_ = reg.GetCounter(
        obs::LabeledName("serve.shard.degraded.total", "shard", shard),
        "Degraded OK responses served by the shard", "requests");
  }
  primary_.extractor->SetTraining(false);
  primary_.matcher->SetTraining(false);
  // Startup quantization is best-effort: a failed calibration falls back to
  // fp32 serving (counted as a quant rollback) instead of refusing to come
  // up. A sharded Create may hand us an already-quantized replica — skip.
  if (config_.quantize && !core::IsQuantized(primary_)) {
    Status quantized = QuantizeForServing(config_, &primary_);
    if (quantized.ok()) {
      quant_calibrations_.fetch_add(1);
    } else {
      quant_rollbacks_.fetch_add(1);
      DADER_LOG(Warning) << "startup quantization rolled back, serving fp32: "
                         << quantized.ToString();
    }
  } else if (config_.quantize) {
    quant_calibrations_.fetch_add(1);
  }
  if (fallback_ != nullptr) {
    DADER_CHECK(fallback_->extractor != nullptr);
    DADER_CHECK(fallback_->matcher != nullptr);
    fallback_->extractor->SetTraining(false);
    fallback_->matcher->SetTraining(false);
  }
  const int num_workers = std::max(1, config_.num_workers);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MatchService::~MatchService() { Stop(); }

void MatchService::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers drain the queue before exiting; anything left (e.g. a request
  // that raced Close) is failed cleanly rather than abandoned.
  for (PendingRequest& pending : queue_.Drain()) {
    MatchResponse response;
    response.status = Status::Unavailable("match service shutting down");
    Respond(pending, std::move(response));
  }
}

void MatchService::Respond(PendingRequest& pending, MatchResponse response) {
  const Clock::time_point now = Clock::now();
  response.total_ms = MsBetween(pending.admitted_at, now);
  if (response.status.ok()) {
    completed_.fetch_add(1);
    Metrics().completed->Increment();
    Metrics().total_ms->Observe(response.total_ms);
    Metrics().queue_ms->Observe(response.queue_ms);
    if (response.degraded) {
      degraded_.fetch_add(1);
      Metrics().degraded->Increment();
      if (shard_degraded_ != nullptr) shard_degraded_->Increment();
    }
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    deadline_expired_.fetch_add(1);
    Metrics().deadline_expired->Increment();
  }
  pending.promise.set_value(std::move(response));
}

std::future<MatchResponse> MatchService::SubmitAsync(MatchRequest request) {
  PendingRequest pending;
  std::future<MatchResponse> future = pending.promise.get_future();

  if (request.a.size() != schema_a_.size() ||
      request.b.size() != schema_b_.size()) {
    MatchResponse response;
    response.status = Status::InvalidArgument(
        "record arity does not match the service schemas (" +
        std::to_string(request.a.size()) + "/" +
        std::to_string(request.b.size()) + " vs " +
        std::to_string(schema_a_.size()) + "/" +
        std::to_string(schema_b_.size()) + ")");
    Metrics().invalid->Increment();
    pending.promise.set_value(std::move(response));
    return future;
  }

  const Clock::time_point now = Clock::now();
  pending.admitted_at = now;
  pending.deadline = DeadlineFor(request, config_, now);
  pending.request = std::move(request);

  if (!running_.load()) {
    MatchResponse response;
    response.status = Status::Unavailable("match service is stopped");
    Respond(pending, std::move(response));
    return future;
  }
  if (!queue_.TryPush(pending)) {
    shed_.fetch_add(1);
    Metrics().shed->Increment();
    MatchResponse response;
    response.status = Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.capacity()) +
        " pending); request shed");
    Respond(pending, std::move(response));
    return future;
  }
  admitted_.fetch_add(1);
  Metrics().admitted->Increment();
  if (shard_requests_ != nullptr) shard_requests_->Increment();
  return future;
}

MatchResponse MatchService::Match(MatchRequest request) {
  return SubmitAsync(std::move(request)).get();
}

std::vector<MatchResponse> MatchService::MatchBatch(
    std::vector<MatchRequest> requests) {
  std::vector<std::future<MatchResponse>> futures;
  futures.reserve(requests.size());
  for (MatchRequest& request : requests) {
    futures.push_back(SubmitAsync(std::move(request)));
  }
  std::vector<MatchResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

Result<std::vector<float>> MatchService::RunForward(
    core::FeatureExtractor* extractor, core::Matcher* matcher,
    const data::ERDataset& batch_data, bool is_primary, int batch_ordinal,
    int attempt, Rng* rng) {
  FaultInjector* fault = config_.fault;
  if (is_primary && fault != nullptr &&
      fault->ShouldFire(FaultKind::kExtractorFault, batch_ordinal, attempt,
                        config_.shard_index)) {
    return Status::Unavailable("injected transient extractor fault");
  }

  const size_t n = batch_data.size();
  const int64_t dim = extractor->feature_dim();
  // Only the primary path may use the cache: fallback/canary extractors
  // produce different feature spaces, and the caller already serializes
  // primary forwards on model_mu_, which is what keeps cache contents
  // coherent with the live weights.
  FeatureCache* cache = is_primary ? cache_.get() : nullptr;
  std::vector<std::string> keys;
  std::vector<std::vector<float>> rows(n);
  std::vector<size_t> miss_indices;
  if (cache != nullptr) {
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const data::LabeledPair& pair = batch_data.pair(i);
      keys.push_back(PairKey(pair.a, pair.b));
      std::optional<std::vector<float>> hit = cache->Get(keys.back());
      if (hit.has_value()) {
        rows[i] = std::move(*hit);
      } else {
        miss_indices.push_back(i);
      }
    }
  } else {
    miss_indices.resize(n);
    for (size_t i = 0; i < n; ++i) miss_indices[i] = i;
  }

  // Extractor forward over the misses only. The encoder pads every pair to
  // the same fixed max_len, so a pair's feature row does not depend on its
  // batch neighbors — a cached row is bit-identical to recomputing it.
  if (!miss_indices.empty()) {
    const core::EncodedBatch encoded =
        extractor->EncodePairs(batch_data, miss_indices);
    const Tensor miss_features = extractor->Forward(encoded, rng).Detach();
    for (size_t j = 0; j < miss_indices.size(); ++j) {
      std::vector<float>& row = rows[miss_indices[j]];
      row.resize(static_cast<size_t>(dim));
      for (int64_t d = 0; d < dim; ++d) {
        row[static_cast<size_t>(d)] =
            miss_features.at(static_cast<int64_t>(j), d);
      }
    }
  }

  std::vector<float> flat;
  flat.reserve(n * static_cast<size_t>(dim));
  for (const std::vector<float>& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const Tensor features = Tensor::FromVector(
      {static_cast<int64_t>(n), dim}, std::move(flat));

  std::vector<float> probs = matcher->PredictProbabilities(features, rng);
  if (is_primary && fault != nullptr &&
      fault->ShouldFire(FaultKind::kExtractorNan, batch_ordinal, attempt,
                        config_.shard_index)) {
    for (float& p : probs) p = std::numeric_limits<float>::quiet_NaN();
  }
  for (float p : probs) {
    if (!std::isfinite(p)) {
      return Status::Internal("non-finite match probability from extractor");
    }
  }
  // Insert computed rows only after the finite check: a NaN-poisoned batch
  // must never seed the cache (the retry would then "hit" the poison).
  if (cache != nullptr) {
    for (size_t i : miss_indices) cache->Put(keys[i], std::move(rows[i]));
  }
  return probs;
}

void MatchService::WorkerLoop(int worker_index) {
  Rng rng = Rng(config_.seed).Fork(static_cast<uint64_t>(worker_index) + 1);
  // Backoff jitter draws from the schedule's private stream, never from the
  // forward rng above: the delay sequence is a pure function of (policy,
  // seed, worker) and cannot be perturbed by batch composition. Sleeps go
  // through the injected clock so tests replay retry storms in virtual time.
  RetrySchedule retry_schedule(
      config_.retry,
      config_.seed ^ (0x9e3779b97f4a7c15ULL *
                      (static_cast<uint64_t>(worker_index) + 1)),
      config_.clock);
  for (;;) {
    std::vector<PendingRequest> batch = queue_.PopBatch(
        static_cast<size_t>(std::max<int64_t>(1, adaptive_.cap())),
        config_.batch_wait_ms);
    if (batch.empty()) return;  // queue closed and drained
    obs::TraceSpan batch_span("serve.batch");

    // Stage 1 — queue-time deadline accounting: expired requests are
    // answered without spending any compute on them.
    Clock::time_point now = Clock::now();
    std::vector<PendingRequest> live;
    live.reserve(batch.size());
    for (PendingRequest& pending : batch) {
      if (pending.deadline <= now) {
        MatchResponse response;
        response.status =
            Status::DeadlineExceeded("deadline expired while queued");
        response.queue_ms = MsBetween(pending.admitted_at, now);
        Respond(pending, std::move(response));
      } else {
        live.push_back(std::move(pending));
      }
    }
    if (live.empty()) continue;

    const Clock::time_point dequeued_at = now;
    data::ERDataset batch_data("serve-batch", "serve", schema_a_, schema_b_);
    for (const PendingRequest& pending : live) {
      batch_data.AddPair({pending.request.a, pending.request.b, /*label=*/-1});
    }
    const int batch_ordinal = batch_counter_.fetch_add(1) + 1;
    Metrics().batch_size->Observe(static_cast<double>(live.size()));

    // Stage 2 — primary path behind the circuit breaker, with bounded
    // retries. Backoff sleeps are capped by the batch's remaining deadline
    // budget so retrying cannot starve every request in the batch.
    std::vector<float> probs;
    bool primary_ok = false;
    int attempts = 0;
    double forward_ms = 0.0;  // last forward duration, fed to the controller
    if (breaker_.AllowPrimary()) {
      for (int attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
        if (attempt > 0) {
          double delay_ms = retry_schedule.NextDelayMs(attempt);
          now = Clock::now();
          double budget_ms = 0.0;
          for (const PendingRequest& pending : live) {
            budget_ms = std::max(budget_ms, MsBetween(now, pending.deadline));
          }
          delay_ms = std::min(delay_ms, std::max(0.0, budget_ms));
          retry_schedule.Sleep(delay_ms);
          // The breaker may have tripped on our own failure reports; stop
          // hammering the primary and serve this batch degraded.
          if (!breaker_.AllowPrimary()) break;
          // Counted only after the breaker re-check: a retry that is
          // abandoned here never ran, so it must not inflate the counter.
          retries_.fetch_add(1);
          Metrics().retries->Increment();
        }
        ++attempts;
        const Clock::time_point forward_start = Clock::now();
        Result<std::vector<float>> result = [&] {
          obs::ScopedLatency lat(Metrics().forward_ms, "serve.forward.primary");
          std::lock_guard<std::mutex> lock(model_mu_);
          return RunForward(primary_.extractor.get(), primary_.matcher.get(),
                            batch_data, /*is_primary=*/true, batch_ordinal,
                            attempt, &rng);
        }();
        forward_ms = MsBetween(forward_start, Clock::now());
        if (result.ok()) {
          probs = std::move(result).ValueOrDie();
          primary_ok = true;
          breaker_.OnSuccess();
          break;
        }
        primary_failures_.fetch_add(1);
        Metrics().primary_failures->Increment();
        DADER_LOG(Warning) << "primary forward failed (batch " << batch_ordinal
                           << ", attempt " << attempt + 1
                           << "): " << result.status().ToString();
        breaker_.OnFailure();
      }
    }

    // Stage 3 — degraded path: cheaper extractor when available, else the
    // calibrated similarity heuristic. Never consults the fault injector,
    // so degraded responses keep flowing through a primary fault streak.
    bool used_degraded = false;
    if (!primary_ok) {
      used_degraded = true;
      if (fallback_ != nullptr) {
        Result<std::vector<float>> result = [&] {
          obs::ScopedLatency lat(Metrics().forward_ms,
                                 "serve.forward.fallback");
          std::lock_guard<std::mutex> lock(model_mu_);
          return RunForward(fallback_->extractor.get(),
                            fallback_->matcher.get(), batch_data,
                            /*is_primary=*/false, batch_ordinal, 0, &rng);
        }();
        if (result.ok()) probs = std::move(result).ValueOrDie();
      }
      if (probs.empty()) {
        probs.reserve(live.size());
        for (const PendingRequest& pending : live) {
          probs.push_back(
              HeuristicMatchProbability(pending.request.a, pending.request.b));
        }
      }
    }

    // Stage 4 — respond, with partial-batch timeout accounting: a request
    // whose deadline passed during the forward gets DeadlineExceeded even
    // though a result was computed for it.
    now = Clock::now();
    for (size_t i = 0; i < live.size(); ++i) {
      PendingRequest& pending = live[i];
      MatchResponse response;
      response.queue_ms = MsBetween(pending.admitted_at, dequeued_at);
      response.attempts = attempts;
      if (pending.deadline <= now) {
        response.status = Status::DeadlineExceeded(
            "deadline expired during batch compute");
      } else {
        response.prob = probs[i];
        response.label = probs[i] >= 0.5f ? 1 : 0;
        response.degraded = used_degraded;
      }
      Respond(pending, std::move(response));
    }

    // Feed the batch-cap controller: mean queue wait of the live requests
    // plus the (final) primary forward duration. Degraded-only batches
    // report forward_ms = 0 — the controller's shrink rule keys on primary
    // compute, which a tripped breaker removes from the picture anyway.
    double sum_queue_ms = 0.0;
    for (const PendingRequest& pending : live) {
      sum_queue_ms += MsBetween(pending.admitted_at, dequeued_at);
    }
    adaptive_.Observe(sum_queue_ms / static_cast<double>(live.size()),
                      forward_ms, static_cast<int64_t>(live.size()));
  }
}

Result<core::DaModel> MatchService::StageCheckpoint(const std::string& path) {
  // 1. Staging copies cloned from the live architecture; weight values are
  //    irrelevant — the checkpoint overwrites them or the reload fails.
  core::DaModel staging;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    staging.extractor =
        primary_.extractor->CloneArchitecture(config_.seed ^ 0x5e7f1eULL);
    staging.matcher = std::make_unique<core::Matcher>(
        primary_.extractor->feature_dim(), config_.seed ^ 0x5e7f2eULL);
  }
  staging.extractor->SetTraining(false);
  staging.matcher->SetTraining(false);

  // 2. Checkpoint validation: LoadModules verifies the CRC footer, the key
  //    universe, and every tensor shape before touching the staging modules.
  Status load_status = core::LoadModules(
      path, {{"F", staging.extractor.get()}, {"M", staging.matcher.get()}});
  if (!load_status.ok()) {
    reload_rollbacks_.fetch_add(1);
    Metrics().reload_rollback->Increment();
    DADER_LOG(Error) << "model reload rejected (validation): "
                     << load_status.ToString();
    return Status(load_status.code(),
                  "model reload rolled back: " + load_status.message());
  }
  return staging;
}

Status MatchService::AdoptPrimary(core::DaModel staged) {
  if (!staged.extractor || !staged.matcher) {
    return Status::InvalidArgument("AdoptPrimary requires a staged model");
  }
  staged.extractor->SetTraining(false);
  staged.matcher->SetTraining(false);

  // 2b. Quantization rides the reload validation path: the staged weights
  // are calibrated before the canary, so the canary exercises the int8
  // model that would actually serve, and a bad calibration (agreement gate)
  // rejects the checkpoint like any other validation failure. The sharded
  // fan-out pre-quantizes the staged model once; its shared-state clones
  // arrive here already quantized and skip.
  if (config_.quantize && !core::IsQuantized(staged)) {
    Status quantized = QuantizeForServing(config_, &staged);
    if (!quantized.ok()) {
      quant_rollbacks_.fetch_add(1);
      reload_rollbacks_.fetch_add(1);
      Metrics().reload_rollback->Increment();
      DADER_LOG(Error) << "model reload rejected (quantization): "
                       << quantized.ToString();
      return Status(quantized.code(),
                    "model reload rolled back: quantization failed: " +
                        quantized.message());
    }
    quant_calibrations_.fetch_add(1);
  }

  // 3. Canary batch: the candidate must produce finite probabilities on the
  //    synthetic near-match / non-match pair before it may serve traffic.
  Rng canary_rng(config_.seed ^ 0xca9a12ULL);
  Result<std::vector<float>> canary_probs =
      RunForward(staged.extractor.get(), staged.matcher.get(), canary_,
                 /*is_primary=*/false, /*batch_ordinal=*/0, /*attempt=*/0,
                 &canary_rng);
  if (!canary_probs.ok()) {
    reload_rollbacks_.fetch_add(1);
    Metrics().reload_rollback->Increment();
    DADER_LOG(Error) << "model reload rejected (canary): "
                     << canary_probs.status().ToString();
    return Status(canary_probs.status().code(),
                  "model reload rolled back: canary batch failed: " +
                      canary_probs.status().message());
  }

  // 4. Atomic swap under the model lock; in-flight batches finished on the
  //    old model, subsequent batches use the new one. The feature cache is
  //    invalidated in the same critical section: a worker that dequeues
  //    next sees either (old weights, old cache) or (new weights, empty
  //    cache), never a mix.
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    primary_ = std::move(staged);
    if (cache_ != nullptr) cache_->Clear();
  }
  reloads_.fetch_add(1);
  Metrics().reload_success->Increment();
  return Status::OK();
}

Status MatchService::CanaryCheck() {
  // is_primary=false: a health probe must not consult the fault injector or
  // touch the feature cache; it exercises the real live weights only.
  Rng canary_rng(config_.seed ^ 0xca9a21ULL);
  std::lock_guard<std::mutex> lock(model_mu_);
  Result<std::vector<float>> probs =
      RunForward(primary_.extractor.get(), primary_.matcher.get(), canary_,
                 /*is_primary=*/false, /*batch_ordinal=*/0, /*attempt=*/0,
                 &canary_rng);
  if (!probs.ok()) {
    return Status(probs.status().code(),
                  "canary check failed: " + probs.status().message());
  }
  return Status::OK();
}

Status MatchService::QuantizeForServing(const ServeConfig& config,
                                        core::DaModel* model) {
  if (config.quant_calib == nullptr) {
    return Status::InvalidArgument(
        "ServeConfig.quantize requires quant_calib calibration pairs");
  }
  core::QuantizeOptions qopts;
  qopts.min_agreement = config.quant_min_agreement;
  qopts.seed = config.seed ^ 0x9a47ULL;
  Result<core::QuantizeReport> report =
      core::QuantizeDaModel(model, *config.quant_calib, qopts);
  if (!report.ok()) {
    QuantMetrics().rollbacks->Increment();
    return report.status();
  }
  QuantMetrics().calibrations->Increment();
  QuantMetrics().agreement->Observe(report.ValueOrDie().agreement);
  return Status::OK();
}

bool MatchService::primary_quantized() {
  std::lock_guard<std::mutex> lock(model_mu_);
  return core::IsQuantized(primary_);
}

Status MatchService::ReloadModel(const std::string& path) {
  obs::TraceSpan reload_span("serve.reload");
  Result<core::DaModel> staged = StageCheckpoint(path);
  if (!staged.ok()) return staged.status();
  Status adopted = AdoptPrimary(std::move(staged).ValueOrDie());
  if (adopted.ok()) DADER_LOG(Info) << "model reloaded from " << path;
  return adopted;
}

ServeStats MatchService::stats() const {
  ServeStats s;
  s.admitted = admitted_.load();
  s.shed = shed_.load();
  s.completed = completed_.load();
  s.deadline_expired = deadline_expired_.load();
  s.degraded = degraded_.load();
  s.primary_failures = primary_failures_.load();
  s.retries = retries_.load();
  s.breaker_trips = breaker_.trips();
  s.reloads = reloads_.load();
  s.reload_rollbacks = reload_rollbacks_.load();
  if (cache_ != nullptr) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
  }
  s.quant_calibrations = quant_calibrations_.load();
  s.quant_rollbacks = quant_rollbacks_.load();
  return s;
}

}  // namespace dader::serve
