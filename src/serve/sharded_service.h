// Sharded MatchService: N independent MatchService replicas behind a
// deterministic router.
//
//                        ShardForPair(a, b, N)
//   client request ─────────────┬─────────────────────────────┐
//                               v                             v
//                    ┌─ shard 0 ────────────┐      ┌─ shard N-1 ──────────┐
//                    │ admission queue      │      │ admission queue      │
//                    │ worker pool + batcher│  ... │ worker pool + batcher│
//                    │ circuit breaker      │      │ circuit breaker      │
//                    │ feature cache        │      │ feature cache        │
//                    │ model replica F+M    │      │ model replica F+M    │
//                    └──────────────────────┘      └──────────────────────┘
//
// Every shard owns the full single-service machinery — bounded queue,
// batcher workers, adaptive batch cap, circuit breaker, feature cache, and
// a deep-copied model replica (core::CloneModel) — so shards share no
// locks on the serving path and a fault storm on one shard trips only
// that shard's breaker. Because replicas are bit-identical copies and the
// extractor's per-pair features are batch-independent, the same request
// stream produces bit-identical match decisions at any shard count; only
// throughput and isolation change.
//
// Hot reload fans out: the checkpoint is staged and validated once
// (StageCheckpoint on shard 0), then cloned and adopted shard by shard.
// The canary is deterministic and every shard adopts an identical clone,
// so the first adoption failing (shard 0) aborts the fan-out before any
// replica swapped — in practice the fan-out is all-or-nothing.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/match_service.h"
#include "serve/router.h"

namespace dader::serve {

/// \brief Configuration of the sharded service.
struct ShardedServeConfig {
  int num_shards = 1;
  /// Per-shard template: every shard gets this config with its own
  /// shard_index; queue capacity, worker count, batch caps, cache size,
  /// breaker, and retry policy are all per shard.
  ServeConfig shard;
};

/// \brief Router + N MatchService shards (see file comment).
class ShardedMatchService {
 public:
  /// \brief Builds the shards: one shard adopts `primary` directly, the
  /// rest get deep copies (core::CloneModel), likewise for the optional
  /// fallback. Fails only if a replica cannot be cloned.
  static Result<std::unique_ptr<ShardedMatchService>> Create(
      ShardedServeConfig config, data::Schema schema_a, data::Schema schema_b,
      core::DaModel primary,
      std::unique_ptr<core::DaModel> fallback = nullptr);

  /// \brief Routes to the pair's home shard and submits there. Shedding,
  /// deadlines, and degradation are entirely the shard's business.
  std::future<MatchResponse> SubmitAsync(MatchRequest request);

  MatchResponse Match(MatchRequest request);
  std::vector<MatchResponse> MatchBatch(std::vector<MatchRequest> requests);

  /// \brief Home shard of a request; pure function of the pair key.
  int ShardFor(const MatchRequest& request) const;

  /// \brief Stages + validates the checkpoint once, then adopts a fresh
  /// replica clone on every shard (canary per shard). See file comment for
  /// the all-or-nothing argument.
  Status ReloadModel(const std::string& path);

  /// \brief Stops every shard. Idempotent.
  void Stop();

  /// \brief Sum of all shards' counters.
  ServeStats stats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  MatchService& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const MatchService& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }

 private:
  explicit ShardedMatchService(
      std::vector<std::unique_ptr<MatchService>> shards);

  std::vector<std::unique_ptr<MatchService>> shards_;
};

}  // namespace dader::serve
