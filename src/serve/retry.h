// Retry policy for transient serving faults: capped exponential backoff
// with deterministic jitter.
//
// The serving path retries a failed primary-extractor forward a bounded
// number of times. Backoff is exponential in the attempt index, capped, and
// jittered (drawn from the caller's seeded Rng so tests replay exactly);
// callers additionally cap each delay by the batch's remaining deadline
// budget so a retry can never push a request past its deadline.

#pragma once

#include <cstdint>

#include "util/clock.h"
#include "util/rng.h"

namespace dader::serve {

/// \brief Bounded-retry schedule for transient faults.
struct RetryPolicy {
  int max_attempts = 3;         ///< total tries, including the first
  double base_backoff_ms = 2.0; ///< delay before attempt 2
  double max_backoff_ms = 50.0; ///< cap on any single delay
  double jitter_frac = 0.5;     ///< delay scaled by U[1-jitter_frac, 1]
};

/// \brief Backoff before retry `attempt` (1-based: 1 = first retry), in ms.
/// Exponential in the attempt index, capped at max_backoff_ms, then scaled
/// by a jitter factor drawn from `rng`.
double BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng* rng);

/// \brief A retry policy bound to its own jitter stream and clock.
///
/// The jitter Rng is private to the schedule — it is never shared with the
/// forward-pass or any other consumer — so the delay sequence is a pure
/// function of (policy, seed): two schedules with the same seed produce the
/// same delays no matter what else the process is doing. Sleeps go through
/// the injected util::Clock, so a test with a ManualClock replays an entire
/// retry storm in virtual time (no real sleeping, no timing flake). The
/// dist control plane reuses the same pair for RPC reconnect backoff and
/// heartbeat pacing.
class RetrySchedule {
 public:
  /// \param clock null uses util::Clock::Real().
  RetrySchedule(RetryPolicy policy, uint64_t jitter_seed,
                util::Clock* clock = nullptr);

  /// \brief Jittered backoff before retry `attempt` (1-based), advancing
  /// the schedule's private jitter stream.
  double NextDelayMs(int attempt);

  /// \brief Sleeps `delay_ms` on the schedule's clock (callers cap the
  /// delay by their own deadline budget first).
  void Sleep(double delay_ms);

  const RetryPolicy& policy() const { return policy_; }
  util::Clock* clock() const { return clock_; }

 private:
  RetryPolicy policy_;
  Rng jitter_rng_;
  util::Clock* clock_;
};

}  // namespace dader::serve
