// Retry policy for transient serving faults: capped exponential backoff
// with deterministic jitter.
//
// The serving path retries a failed primary-extractor forward a bounded
// number of times. Backoff is exponential in the attempt index, capped, and
// jittered (drawn from the caller's seeded Rng so tests replay exactly);
// callers additionally cap each delay by the batch's remaining deadline
// budget so a retry can never push a request past its deadline.

#pragma once

#include "util/rng.h"

namespace dader::serve {

/// \brief Bounded-retry schedule for transient faults.
struct RetryPolicy {
  int max_attempts = 3;         ///< total tries, including the first
  double base_backoff_ms = 2.0; ///< delay before attempt 2
  double max_backoff_ms = 50.0; ///< cap on any single delay
  double jitter_frac = 0.5;     ///< delay scaled by U[1-jitter_frac, 1]
};

/// \brief Backoff before retry `attempt` (1-based: 1 = first retry), in ms.
/// Exponential in the attempt index, capped at max_backoff_ms, then scaled
/// by a jitter factor drawn from `rng`.
double BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng* rng);

}  // namespace dader::serve
