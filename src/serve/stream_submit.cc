#include "serve/stream_submit.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace dader::serve {

namespace {

struct StreamMetrics {
  obs::Counter* submitted;
  obs::Counter* backpressure_waits;
  obs::Gauge* inflight;
};

StreamMetrics& Metrics() {
  static StreamMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    StreamMetrics metrics;
    metrics.submitted = reg.GetCounter(
        "serve.stream.submitted.total",
        "Requests submitted through a StreamSubmitter window", "requests");
    metrics.backpressure_waits = reg.GetCounter(
        "serve.stream.backpressure_waits.total",
        "Submit calls that blocked on a full in-flight window", "waits");
    metrics.inflight = reg.GetGauge(
        "serve.stream.inflight",
        "Outstanding requests of the most recently active StreamSubmitter",
        "requests");
    return metrics;
  }();
  return m;
}

}  // namespace

StreamSubmitter::StreamSubmitter(ShardedMatchService* service, Options options,
                                 Callback on_response)
    : service_(service),
      options_(options),
      on_response_(std::move(on_response)) {
  DADER_CHECK(service_ != nullptr);
  DADER_CHECK_GT(options_.max_in_flight, 0u);
}

StreamSubmitter::~StreamSubmitter() { Drain(); }

void StreamSubmitter::Submit(MatchRequest request) {
  if (window_.size() >= options_.max_in_flight) {
    Metrics().backpressure_waits->Increment();
    CompleteOldest();
  }
  InFlight entry;
  entry.index = static_cast<size_t>(submitted_);
  entry.request = request;  // copy kept for the callback
  entry.future = service_->SubmitAsync(std::move(request));
  window_.push_back(std::move(entry));
  ++submitted_;
  Metrics().submitted->Increment();
  Metrics().inflight->Set(static_cast<double>(window_.size()));
}

void StreamSubmitter::Drain() {
  while (!window_.empty()) CompleteOldest();
}

void StreamSubmitter::CompleteOldest() {
  InFlight entry = std::move(window_.front());
  window_.pop_front();
  Metrics().inflight->Set(static_cast<double>(window_.size()));
  const MatchResponse response = entry.future.get();
  if (on_response_) on_response_(entry.index, entry.request, response);
}

}  // namespace dader::serve
