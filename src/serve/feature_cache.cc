#include "serve/feature_cache.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace dader::serve {

namespace {

// Process-wide cache metrics; all FeatureCache instances share the series
// (same convention as serve.queue.depth — per-instance numbers live on the
// accessors).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Gauge* entries;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Default();
    CacheMetrics m;
    m.hits = reg.GetCounter("serve.cache.hits.total",
                            "Feature-cache lookups that skipped the extractor",
                            "lookups");
    m.misses = reg.GetCounter("serve.cache.misses.total",
                              "Feature-cache lookups that ran the extractor",
                              "lookups");
    m.evictions = reg.GetCounter("serve.cache.evictions.total",
                                 "LRU entries evicted to make room",
                                 "entries");
    m.entries = reg.GetGauge("serve.cache.entries",
                             "Resident entries of the last-updated cache",
                             "entries");
    return m;
  }();
  return metrics;
}

}  // namespace

FeatureCache::FeatureCache(size_t capacity) : capacity_(capacity) {
  DADER_CHECK_GT(capacity, 0u);
  Metrics();  // register the series before any worker touches them
}

std::optional<std::vector<float>> FeatureCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    Metrics().misses->Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  Metrics().hits->Increment();
  return it->second->second;
}

void FeatureCache::Put(const std::string& key, std::vector<float> features) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(features);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    Metrics().evictions->Increment();
  }
  lru_.emplace_front(key, std::move(features));
  index_[key] = lru_.begin();
  Metrics().entries->Set(static_cast<double>(lru_.size()));
}

void FeatureCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  Metrics().entries->Set(0.0);
}

size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t FeatureCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t FeatureCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t FeatureCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace dader::serve
