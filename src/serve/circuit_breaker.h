// Circuit breaker guarding the primary (LM) extractor path.
//
// Classic three-state machine:
//
//   kClosed    — primary serves traffic; consecutive failures are counted.
//   kOpen      — failure streak reached the threshold; all traffic is routed
//                to the degraded fallback for `cooldown_ms`.
//   kHalfOpen  — cooldown elapsed; a single probe batch at a time is allowed
//                back onto the primary. `half_open_successes` consecutive
//                probe successes close the breaker; any probe failure
//                re-opens it (restarting the cooldown).
//
// Thread-safe; all transitions happen under one mutex. Time is the steady
// clock, so wall-clock adjustments cannot wedge the breaker.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace dader::serve {

/// \brief Breaker state (see file comment).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// \brief "closed", "open", "half-open".
const char* BreakerStateName(BreakerState state);

/// \brief Thresholds of the breaker state machine.
struct BreakerConfig {
  int failure_threshold = 3;   ///< consecutive failures that trip the breaker
  double cooldown_ms = 100.0;  ///< open duration before half-open probing
  int half_open_successes = 2; ///< probe successes required to re-close
};

/// \brief Thread-safe circuit breaker.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config);

  /// \brief True when the caller may use the protected (primary) path now.
  /// In half-open state admits one probe at a time; the probe slot is
  /// released by the matching OnSuccess/OnFailure.
  bool AllowPrimary();

  /// \brief Reports the outcome of a primary call admitted by AllowPrimary.
  void OnSuccess();
  void OnFailure();

  BreakerState state() const;

  /// \brief Closed -> open transitions since construction.
  int64_t trips() const;

 private:
  using Clock = std::chrono::steady_clock;

  // Opens the breaker and restarts the cooldown. Caller holds mu_.
  void TripLocked();

  BreakerConfig config_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int failure_streak_ = 0;      // consecutive failures while closed
  int probe_successes_ = 0;     // consecutive successes while half-open
  bool probe_in_flight_ = false;
  int64_t trips_ = 0;
  Clock::time_point opened_at_{};

  // serve.breaker.transitions.total{to=...}; shared across breakers.
  obs::Counter* m_to_open_;
  obs::Counter* m_to_half_open_;
  obs::Counter* m_to_closed_;
};

}  // namespace dader::serve
