// Deterministic request routing for the sharded MatchService.
//
// A request's home shard is a pure function of its normalized entity-pair
// key: both records are word-tokenized (lower-cased, punctuation split —
// the same normalization the extractor's hashing vocabulary applies), the
// tokens are joined with unambiguous separators, and the resulting key is
// FNV-1a hashed modulo the shard count. Consequences the serving layer
// relies on:
//
//   * Stability — the same pair always lands on the same shard, so its
//     cached features are always found (the feature cache is per-shard and
//     never needs cross-shard invalidation).
//   * Formatting-insensitivity — "iPhone 12" and "IPHONE  12" produce the
//     same key, so near-duplicate query spellings share a cache entry.
//   * No coordination — routing reads no shared state; any client thread
//     computes the shard without touching the shards themselves.

#pragma once

#include <cstdint>
#include <string>

#include "data/schema.h"

namespace dader::serve {

/// \brief Canonical cache/routing key of a record pair: normalized word
/// tokens with intra-record and inter-record separators that cannot occur
/// inside a token.
std::string PairKey(const data::Record& a, const data::Record& b);

/// \brief FNV-1a (64-bit) hash of PairKey(a, b).
uint64_t PairKeyHash(const data::Record& a, const data::Record& b);

/// \brief Home shard of the pair in [0, num_shards). num_shards must be
/// positive; 1 shard always routes to 0.
int ShardForPair(const data::Record& a, const data::Record& b,
                 int num_shards);

}  // namespace dader::serve
