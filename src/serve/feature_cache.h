// LRU cache of extractor features, keyed on the normalized tokenized pair.
//
// DADER's match probability is a pure function of the entity pair: the
// encoder pads every pair to the same fixed max_len and the extractor's
// per-pair feature row does not depend on what else shares the batch. That
// makes the (pair -> feature row) mapping cacheable: on a hit the serving
// path skips tokenization, encoding, and the full extractor forward — the
// dominant cost — and only re-runs the tiny matcher head M on the cached
// row. Entries are invalidated wholesale on hot reload (new weights mean
// new features), which is why MatchService clears the cache inside the
// same critical section that swaps the model.
//
// One cache per shard: the router pins a pair to its shard, so per-shard
// caches see every repeat of "their" pairs while sharing no locks.
//
// Thread-safety: all operations take the internal mutex. Get() is a
// copying read (a feature row is feature_dim floats) so the caller never
// holds a reference into the cache.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dader::serve {

/// \brief Thread-safe LRU map: pair key -> extractor feature row.
class FeatureCache {
 public:
  /// \param capacity maximum resident entries; inserting past it evicts
  ///   the least-recently-used entry. Must be positive.
  explicit FeatureCache(size_t capacity);

  /// \brief Returns a copy of the cached feature row and marks the entry
  /// most-recently-used; nullopt on miss.
  std::optional<std::vector<float>> Get(const std::string& key);

  /// \brief Inserts (or refreshes) an entry, evicting the LRU entry when
  /// at capacity.
  void Put(const std::string& key, std::vector<float> features);

  /// \brief Drops every entry (hot reload: old-weight features are stale).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;

 private:
  using Entry = std::pair<std::string, std::vector<float>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace dader::serve
