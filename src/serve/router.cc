#include "serve/router.h"

#include "text/tokenizer.h"
#include "util/logging.h"

namespace dader::serve {

namespace {

// ASCII unit/record separators: WordTokenize never emits control
// characters, so these cannot collide with token content.
constexpr char kTokenSep = '\x1f';
constexpr char kRecordSep = '\x1e';

void AppendRecordKey(const data::Record& record, std::string* key) {
  for (const std::string& value : record.values()) {
    for (const std::string& token : text::WordTokenize(value)) {
      key->append(token);
      key->push_back(kTokenSep);
    }
  }
}

}  // namespace

std::string PairKey(const data::Record& a, const data::Record& b) {
  std::string key;
  AppendRecordKey(a, &key);
  key.push_back(kRecordSep);
  AppendRecordKey(b, &key);
  return key;
}

uint64_t PairKeyHash(const data::Record& a, const data::Record& b) {
  const std::string key = PairKey(a, b);
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : key) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  // Raw FNV-1a low bits carry little more than byte-parity information
  // (the final multiply by an odd prime preserves parity), which
  // degenerates under `% 2` sharding: for a self-pair every byte appears
  // twice and its parity cancels. The splitmix64 finalizer avalanches the
  // state so the low bits are safe for modulo routing.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

int ShardForPair(const data::Record& a, const data::Record& b,
                 int num_shards) {
  DADER_CHECK_GT(num_shards, 0);
  if (num_shards == 1) return 0;
  return static_cast<int>(PairKeyHash(a, b) %
                          static_cast<uint64_t>(num_shards));
}

}  // namespace dader::serve
