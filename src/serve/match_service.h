// MatchService: fault-tolerant batched entity-match serving.
//
// Owns a loaded (Feature Extractor F, Matcher M) pair and answers match
// requests with production-grade fault tolerance:
//
//   request -> [bounded admission queue] -> [batcher worker]
//                      |  full => shed            |
//                      v                          v
//               ResourceExhausted     [circuit breaker] -- closed --> primary
//                                            |  open                F_LM + M
//                                            v                (retry w/ backoff
//                                     degraded path             + jitter, then
//                               F_RNN + M_RNN fallback,          breaker trip)
//                               or calibrated similarity
//                               heuristic; degraded=true
//
// Deadlines are enforced at every stage: requests that expire while queued
// are answered DeadlineExceeded without spending compute; retry backoff is
// capped by the batch's remaining budget; and requests whose deadline
// passes during a slow forward are answered DeadlineExceeded even though a
// result was computed (partial-batch timeout accounting).
//
// ReloadModel(path) hot-swaps weights with no downtime: the CRC-tagged v2
// checkpoint is restored into a staging copy (core::LoadModules validates
// every key/shape before touching anything), a canary batch must produce
// finite probabilities, and only then are the live modules swapped under
// the model lock. Any failure rolls back — the old model keeps serving.
//
// Two optional perf mechanisms (both used by sharded serving, see
// serve/sharded_service.h):
//
//   * Feature cache (ServeConfig::feature_cache_capacity > 0): primary
//     batches look up each pair's extractor features by normalized token
//     key first; hits skip encode + extractor entirely and only re-run the
//     matcher head. Lookups and inserts happen inside the model-mutex
//     critical section and AdoptPrimary clears the cache in the same
//     section that swaps the weights, so cached features always match the
//     live model.
//   * Adaptive batch cap (ServeConfig::adaptive.enabled): a windowed
//     hysteresis controller (serve/adaptive_batch.h) grows/shrinks the
//     dequeue cap from observed queue wait and forward latency.
//
// Threading: N batcher workers pull from the queue; forward passes and the
// model-pointer swap serialize on one model mutex (this repo targets a
// single CPU core — batching and feature caching, not parallel forwards,
// are the throughput levers). All counters are atomics; the service is
// safe to drive from many client threads.

#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "serve/admission_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/feature_cache.h"
#include "serve/match_types.h"

namespace dader::serve {

/// \brief Calibrated token-overlap match probability — the model-free
/// degraded path of last resort. Jaccard similarity of the two records'
/// word tokens through a logistic calibration.
float HeuristicMatchProbability(const data::Record& a, const data::Record& b);

/// \brief Batched, fault-tolerant match server (see file comment).
class MatchService {
 public:
  /// \param primary   the full-quality model (typically LM extractor).
  /// \param fallback  optional cheaper model (typically RNN extractor)
  ///   serving degraded traffic; when null the similarity heuristic is the
  ///   degraded path.
  MatchService(ServeConfig config, data::Schema schema_a, data::Schema schema_b,
               core::DaModel primary,
               std::unique_ptr<core::DaModel> fallback = nullptr);
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// \brief Admits one request. Never blocks on overload: a full queue
  /// resolves the future immediately with ResourceExhausted.
  std::future<MatchResponse> SubmitAsync(MatchRequest request);

  /// \brief Blocking single-request convenience wrapper.
  MatchResponse Match(MatchRequest request);

  /// \brief Submits all requests, then waits for every response.
  std::vector<MatchResponse> MatchBatch(std::vector<MatchRequest> requests);

  /// \brief Validates the checkpoint at `path` in a staging copy, runs a
  /// canary batch, then atomically swaps the primary model. On any failure
  /// the live model is untouched and serving continues (rollback).
  /// Equivalent to StageCheckpoint + AdoptPrimary.
  Status ReloadModel(const std::string& path);

  /// \brief Reload phase 1: clones the live architecture and restores the
  /// checkpoint into the clone under full validation, without touching the
  /// serving model. The sharded service stages once and fans the staged
  /// weights out to every replica.
  Result<core::DaModel> StageCheckpoint(const std::string& path);

  /// \brief Reload phase 2: canary-checks `staged`, then swaps it in as
  /// the primary and invalidates the feature cache (old-weight features
  /// must never meet new matcher weights) in the same critical section.
  Status AdoptPrimary(core::DaModel staged);

  /// \brief Runs the reload-canary batch through the live primary and
  /// requires finite probabilities — the same health probe a staged model
  /// must pass before adoption, here aimed at the serving weights. The
  /// dist control plane uses it as the re-admission warm-up check before a
  /// recovered worker gets full traffic back.
  Status CanaryCheck();

  /// \brief Stops the workers; queued requests are still answered, then
  /// late submissions get Unavailable. Idempotent; called by the dtor.
  void Stop();

  /// \brief Applies `config`'s quantization knobs to `model` (calibrate,
  /// attach int8 state, run the fp32-agreement gate), updating the shared
  /// serve.quant.* metric series. OK = the model serves int8; any error =
  /// the model was left fully fp32. Exposed so the sharded service can
  /// quantize a staged model once and fan out shared-state clones.
  static Status QuantizeForServing(const ServeConfig& config,
                                   core::DaModel* model);

  /// \brief True while the live primary carries int8 state.
  bool primary_quantized();

  ServeStats stats() const;
  BreakerState breaker_state() const { return breaker_.state(); }
  size_t queue_depth() const { return queue_.size(); }
  const ServeConfig& config() const { return config_; }
  /// Current batch cap (== config().max_batch unless adaptive is enabled).
  int64_t batch_cap() const { return adaptive_.cap(); }
  const AdaptiveBatchController& batch_controller() const {
    return adaptive_;
  }
  /// Null when the service was configured without a feature cache.
  const FeatureCache* feature_cache() const { return cache_.get(); }

 private:
  void WorkerLoop(int worker_index);

  /// Runs one forward pass of `extractor`+`matcher` over the live batch.
  /// Primary passes host the fault-injection site (batch/attempt map onto
  /// the injector's epoch/step filters) and fail on non-finite outputs.
  Result<std::vector<float>> RunForward(core::FeatureExtractor* extractor,
                                        core::Matcher* matcher,
                                        const data::ERDataset& batch_data,
                                        bool is_primary, int batch_ordinal,
                                        int attempt, Rng* rng);

  /// Resolves one request (sets timings, counters, and the promise).
  void Respond(PendingRequest& pending, MatchResponse response);

  ServeConfig config_;
  data::Schema schema_a_;
  data::Schema schema_b_;

  std::mutex model_mu_;  // guards the module pointers, forward passes, and
                         // the cache's coherence with the live weights
  core::DaModel primary_;
  std::unique_ptr<core::DaModel> fallback_;

  data::ERDataset canary_;  // fixed synthetic pairs for reload validation

  std::unique_ptr<FeatureCache> cache_;  // null = caching disabled
  AdaptiveBatchController adaptive_;
  AdmissionQueue queue_;
  CircuitBreaker breaker_;

  // Per-shard labeled series; null when config_.shard_index < 0.
  obs::Counter* shard_requests_ = nullptr;
  obs::Counter* shard_degraded_ = nullptr;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{true};
  std::atomic<int> batch_counter_{0};

  // --- counters (see ServeStats) ---
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> primary_failures_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> reloads_{0};
  std::atomic<int64_t> reload_rollbacks_{0};
  std::atomic<int64_t> quant_calibrations_{0};
  std::atomic<int64_t> quant_rollbacks_{0};
};

}  // namespace dader::serve
