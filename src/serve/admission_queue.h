// Bounded admission queue feeding the MatchService batcher threads.
//
// Admission is TryPush: when the queue is at capacity the request is
// rejected immediately (the service turns that into a ResourceExhausted
// response) — callers are never blocked by overload, and queue memory is
// bounded by construction. Workers PopBatch: block for the first request,
// then linger briefly to fill the batch.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "serve/match_types.h"

namespace dader::serve {

/// \brief A queued request plus its response channel and timing state.
struct PendingRequest {
  MatchRequest request;
  std::promise<MatchResponse> promise;
  std::chrono::steady_clock::time_point admitted_at;
  std::chrono::steady_clock::time_point deadline;
};

/// \brief Thread-safe bounded MPMC queue with load shedding.
class AdmissionQueue {
 public:
  /// \param shard when non-negative, publishes depth to the per-shard
  ///   serve.shard.queue.depth{shard=...} series instead of the shared
  ///   serve.queue.depth.
  explicit AdmissionQueue(size_t capacity, int shard = -1);

  /// \brief Enqueues; returns false (leaving `req` valid) when the queue is
  /// full or closed — the caller sheds the request.
  bool TryPush(PendingRequest& req);

  /// \brief Pops up to `max_batch` requests. Blocks until at least one
  /// request is available (or the queue is closed), then waits up to
  /// `linger_ms` more to fill the batch. Returns an empty batch only when
  /// closed and drained.
  std::vector<PendingRequest> PopBatch(size_t max_batch, double linger_ms);

  /// \brief Removes and returns everything queued (used at shutdown to fail
  /// pending requests).
  std::vector<PendingRequest> Drain();

  /// \brief Marks the queue closed and wakes all waiters. Idempotent.
  void Close();

  size_t size() const;
  bool closed() const;
  size_t capacity() const { return capacity_; }

 private:
  // Publishes queue_.size() to serve.queue.depth. Caller holds mu_. All
  // queues in a process share the series (see docs/OBSERVABILITY.md).
  void PublishDepthLocked() {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
  obs::Gauge* depth_gauge_;
};

}  // namespace dader::serve
