// Bounded streaming submission into a ShardedMatchService.
//
// A blocking stage produces candidates far faster than the matcher can
// score them; submitting every candidate with SubmitAsync would park the
// whole stream inside the shards' admission queues (or shed most of it).
// StreamSubmitter keeps at most `max_in_flight` requests outstanding:
// Submit() hands the request to the pair's home shard and, once the
// window is full, completes the oldest outstanding request first — the
// producer's own thread becomes the backpressure.
//
// Responses are delivered to the callback in submission order, on the
// submitting thread (inside Submit/Drain). The class is intentionally
// single-producer: one upstream stream, one window, no locks of its own —
// all concurrency lives in the service behind it. Use one StreamSubmitter
// per producing thread.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>

#include "serve/sharded_service.h"

namespace dader::serve {

/// \brief Single-producer bounded-window submitter (see file comment).
class StreamSubmitter {
 public:
  struct Options {
    /// Maximum outstanding requests before Submit blocks on the oldest.
    size_t max_in_flight = 128;
  };

  /// \brief `on_response(index, request, response)` runs on the submitting
  /// thread, in submission order; `index` counts submissions from 0.
  using Callback = std::function<void(
      size_t index, const MatchRequest& request, const MatchResponse& response)>;

  /// \brief `service` must outlive the submitter.
  StreamSubmitter(ShardedMatchService* service, Options options,
                  Callback on_response);

  /// \brief Destructor drains outstanding requests (callbacks still run).
  ~StreamSubmitter();

  StreamSubmitter(const StreamSubmitter&) = delete;
  StreamSubmitter& operator=(const StreamSubmitter&) = delete;

  /// \brief Submits one request; blocks (completing the oldest
  /// outstanding request) when the window is full.
  void Submit(MatchRequest request);

  /// \brief Completes every outstanding request.
  void Drain();

  /// \brief Requests submitted so far.
  int64_t submitted() const { return submitted_; }
  /// \brief Currently outstanding requests.
  size_t in_flight() const { return window_.size(); }

 private:
  struct InFlight {
    size_t index;
    MatchRequest request;  // kept for the callback
    std::future<MatchResponse> future;
  };

  void CompleteOldest();

  ShardedMatchService* service_;
  Options options_;
  Callback on_response_;
  std::deque<InFlight> window_;
  int64_t submitted_ = 0;
};

}  // namespace dader::serve
