#include "serve/adaptive_batch.h"

#include <algorithm>
#include <string>

namespace dader::serve {

namespace {

std::string ShardLabel(const std::string& base, int shard) {
  if (shard < 0) return base;
  return obs::LabeledName(base, "shard", std::to_string(shard));
}

}  // namespace

AdaptiveBatchController::AdaptiveBatchController(
    const AdaptiveBatchConfig& config, int64_t initial_cap, int shard)
    : config_(config),
      cap_(std::clamp(initial_cap, std::max<int64_t>(1, config.min_batch),
                      std::max<int64_t>(1, config.max_batch))) {
  auto& reg = obs::MetricsRegistry::Default();
  cap_gauge_ = reg.GetGauge(ShardLabel("serve.shard.batch_cap", shard),
                            "Current adaptive batch cap of the shard",
                            "requests");
  grow_counter_ =
      reg.GetCounter(ShardLabel("serve.shard.adapt.grow.total", shard),
                     "Adaptive batch-cap doublings", "adjustments");
  shrink_counter_ =
      reg.GetCounter(ShardLabel("serve.shard.adapt.shrink.total", shard),
                     "Adaptive batch-cap halvings", "adjustments");
  if (!config_.enabled) cap_.store(initial_cap, std::memory_order_relaxed);
  cap_gauge_->Set(static_cast<double>(cap()));
}

void AdaptiveBatchController::Observe(double queue_ms, double forward_ms,
                                      int64_t batch_size) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  sum_queue_ms_ += queue_ms;
  sum_forward_ms_ += forward_ms;
  sum_batch_ += static_cast<double>(batch_size);
  if (++samples_ < std::max(1, config_.window)) return;
  const double inv = 1.0 / static_cast<double>(samples_);
  DecideLocked(sum_queue_ms_ * inv, sum_forward_ms_ * inv, sum_batch_ * inv);
  samples_ = 0;
  sum_queue_ms_ = sum_forward_ms_ = sum_batch_ = 0.0;
}

void AdaptiveBatchController::DecideLocked(double mean_queue_ms,
                                           double mean_forward_ms,
                                           double mean_batch) {
  if (cooldown_ > 0) {
    // Refractory period: the previous adjustment must have a chance to
    // show up in the signals before the next one, or grow/shrink would
    // chase their own transient.
    --cooldown_;
    grow_streak_ = 0;
    shrink_streak_ = 0;
    return;
  }
  const int64_t cap = cap_.load(std::memory_order_relaxed);
  const bool grow_signal =
      mean_queue_ms >= config_.grow_queue_ms &&
      mean_batch >=
          config_.full_batch_fraction * static_cast<double>(cap) &&
      cap < config_.max_batch;
  const bool shrink_signal = mean_forward_ms >= config_.shrink_forward_ms &&
                             mean_queue_ms <= config_.idle_queue_ms &&
                             cap > config_.min_batch;
  grow_streak_ = grow_signal ? grow_streak_ + 1 : 0;
  shrink_streak_ = shrink_signal ? shrink_streak_ + 1 : 0;
  if (grow_streak_ >= config_.hold_windows) {
    cap_.store(std::min(cap * 2, config_.max_batch),
               std::memory_order_relaxed);
    ++grows_;
    grow_counter_->Increment();
    cap_gauge_->Set(static_cast<double>(this->cap()));
    grow_streak_ = 0;
    cooldown_ = config_.cooldown_windows;
  } else if (shrink_streak_ >= config_.hold_windows) {
    cap_.store(std::max(cap / 2, config_.min_batch),
               std::memory_order_relaxed);
    ++shrinks_;
    shrink_counter_->Increment();
    cap_gauge_->Set(static_cast<double>(this->cap()));
    shrink_streak_ = 0;
    cooldown_ = config_.cooldown_windows;
  }
}

int64_t AdaptiveBatchController::grows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grows_;
}

int64_t AdaptiveBatchController::shrinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shrinks_;
}

}  // namespace dader::serve
