// Request/response/stats types of the batched match-serving layer.

#pragma once

#include <chrono>
#include <cstdint>
#include <future>

#include "data/schema.h"
#include "serve/adaptive_batch.h"
#include "serve/circuit_breaker.h"
#include "serve/retry.h"
#include "util/status.h"

namespace dader {
class FaultInjector;  // util/fault.h; only tests/benches arm one
namespace data {
class ERDataset;  // data/dataset.h; quantization calibration pairs
}
namespace util {
class Clock;  // util/clock.h; tests inject a ManualClock
}
}

namespace dader::serve {

/// \brief One match question: does record `a` (schema A) match record `b`
/// (schema B)?
struct MatchRequest {
  data::Record a;
  data::Record b;
  /// Per-request latency budget from admission to response; <= 0 uses
  /// ServeConfig::default_deadline_ms.
  double deadline_ms = -1.0;
};

/// \brief The answer to one MatchRequest.
struct MatchResponse {
  /// OK, ResourceExhausted (shed at admission), DeadlineExceeded,
  /// InvalidArgument (schema mismatch), or Unavailable (shutdown).
  Status status;
  int label = -1;          ///< 1 match / 0 non-match (status.ok() only)
  float prob = 0.0f;       ///< p(match) (status.ok() only)
  bool degraded = false;   ///< served by the fallback path, not the primary
  int attempts = 0;        ///< primary forward attempts spent on the batch
  double queue_ms = 0.0;   ///< admission -> dequeue
  double total_ms = 0.0;   ///< admission -> response
};

/// \brief Monotonic serving counters (one Snapshot is one consistent read
/// of independently-updated atomics; cross-counter sums may transiently
/// disagree while requests are in flight).
struct ServeStats {
  int64_t admitted = 0;          ///< requests accepted into the queue
  int64_t shed = 0;              ///< rejected at admission (queue full)
  int64_t completed = 0;         ///< responded OK
  int64_t deadline_expired = 0;  ///< responded DeadlineExceeded
  int64_t degraded = 0;          ///< OK responses served by the fallback
  int64_t primary_failures = 0;  ///< failed primary forward attempts
  int64_t retries = 0;           ///< primary attempts beyond the first
  int64_t breaker_trips = 0;     ///< closed -> open transitions
  int64_t reloads = 0;           ///< successful ReloadModel swaps
  int64_t reload_rollbacks = 0;  ///< ReloadModel validations that failed
  int64_t cache_hits = 0;        ///< feature-cache hits (extractor skipped)
  int64_t cache_misses = 0;      ///< feature-cache misses (extractor ran)
  int64_t quant_calibrations = 0;  ///< accepted int8 calibrations
  int64_t quant_rollbacks = 0;     ///< calibrations rolled back to fp32
};

/// \brief Tuning knobs of the MatchService.
struct ServeConfig {
  size_t queue_capacity = 64;       ///< bounded admission queue; beyond = shed
  int64_t max_batch = 16;           ///< per-forward batch cap
  double batch_wait_ms = 1.0;       ///< linger to fill a batch after the first
  double default_deadline_ms = 250.0;
  int num_workers = 1;              ///< batcher threads
  RetryPolicy retry;                ///< transient-fault retry schedule
  BreakerConfig breaker;            ///< primary-path circuit breaker
  uint64_t seed = 42;               ///< jitter / dropout-off forward rng
  /// Optional fault injector consulted at the extractor forward site;
  /// null (the default) means no instrumented site ever fires.
  FaultInjector* fault = nullptr;
  /// Clock driving retry-backoff sleeps; null uses the real steady clock.
  /// Tests inject a util::ManualClock so retry timing is virtual and
  /// deterministic (see serve/retry.h).
  util::Clock* clock = nullptr;
  /// Runtime batch-cap controller; when enabled, max_batch is only the
  /// initial cap and the controller moves it inside
  /// [adaptive.min_batch, adaptive.max_batch].
  AdaptiveBatchConfig adaptive;
  /// Primary-path feature-cache entries; 0 (the default) disables the
  /// cache. See serve/feature_cache.h for the exactness argument.
  size_t feature_cache_capacity = 0;
  /// Shard index of this service inside a ShardedMatchService: labels the
  /// serve.shard.* metric series and scopes shard-filtered fault specs.
  /// Negative (the default) means "not sharded" — unlabeled shared series.
  int shard_index = -1;
  /// Serve the primary through the int8 quantized path (core/quantize.h).
  /// Requires `quant_calib`; calibration failure at startup is non-fatal
  /// (the service falls back to fp32 and counts a calibration rollback),
  /// while a failure during hot-reload rejects the staged checkpoint.
  bool quantize = false;
  /// Labeled pairs used to calibrate activation ranges and run the
  /// fp32-vs-int8 agreement gate. Must outlive the service. Null with
  /// quantize=true is a construction error.
  const data::ERDataset* quant_calib = nullptr;
  /// Minimum fp32-vs-int8 label agreement on held-out calibration pairs;
  /// below it quantization is rolled back.
  double quant_min_agreement = 0.99;
};

}  // namespace dader::serve
