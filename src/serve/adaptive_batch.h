// Adaptive per-shard batch-cap controller.
//
// The static ServeConfig::max_batch is a compromise: too small and queue
// wait dominates under load, too large and a single forward pass blows the
// latency budget of everything it batched. This controller moves the cap
// at runtime from the same signals the serve.latency.queue_ms /
// serve.latency.forward_ms histograms record:
//
//   grow   (cap *= 2)  when the window-mean queue wait is high AND batches
//                      are actually filling the current cap — queue
//                      pressure that a bigger batch can drain;
//   shrink (cap /= 2)  when the window-mean forward latency is high AND
//                      the queue is near-idle — compute, not arrival rate,
//                      dominates, so smaller batches cut tail latency.
//
// Oscillation is prevented by construction, not tuning luck:
//   * a dead band between the grow and shrink conditions (high queue wait
//     and idle queue cannot both hold);
//   * decisions use window means of `window` batches, not single samples;
//   * a condition must persist for `hold_windows` consecutive windows;
//   * every adjustment starts a `cooldown_windows` refractory period.
//
// Threading: workers call Observe() after each batch and read cap() before
// each dequeue. Observation/decision state is mutex-guarded; the cap itself
// is an atomic so the hot-path read takes no lock. TSan-clean.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace dader::serve {

/// \brief Tuning of the adaptive batch-cap controller.
struct AdaptiveBatchConfig {
  bool enabled = false;           ///< off = cap() stays at the initial value
  int64_t min_batch = 1;          ///< lower clamp for shrink
  int64_t max_batch = 128;        ///< upper clamp for grow
  int window = 8;                 ///< batches averaged per decision window
  double grow_queue_ms = 2.0;     ///< mean queue wait that signals pressure
  double full_batch_fraction = 0.75;  ///< mean size/cap that counts as "full"
  double shrink_forward_ms = 8.0; ///< mean forward latency that signals bloat
  double idle_queue_ms = 0.5;     ///< mean queue wait that counts as idle
  int hold_windows = 2;           ///< consecutive windows before acting
  int cooldown_windows = 2;       ///< windows ignored after an adjustment
};

/// \brief Windowed hysteresis controller for one shard's batch cap.
class AdaptiveBatchController {
 public:
  /// \param shard labels the serve.shard.batch_cap / serve.shard.adapt.*
  ///   series; negative uses unlabeled shared series (unsharded service).
  AdaptiveBatchController(const AdaptiveBatchConfig& config,
                          int64_t initial_cap, int shard);

  /// \brief Current batch cap; lock-free, read by workers per dequeue.
  int64_t cap() const { return cap_.load(std::memory_order_relaxed); }

  /// \brief Feeds one completed batch's signals; may adjust the cap at
  /// window boundaries. No-op when the controller is disabled.
  void Observe(double queue_ms, double forward_ms, int64_t batch_size);

  int64_t grows() const;
  int64_t shrinks() const;

 private:
  // Applies one window's means to the hysteresis state. Caller holds mu_.
  void DecideLocked(double mean_queue_ms, double mean_forward_ms,
                    double mean_batch);

  const AdaptiveBatchConfig config_;
  std::atomic<int64_t> cap_;

  mutable std::mutex mu_;
  int samples_ = 0;
  double sum_queue_ms_ = 0.0;
  double sum_forward_ms_ = 0.0;
  double sum_batch_ = 0.0;
  int grow_streak_ = 0;
  int shrink_streak_ = 0;
  int cooldown_ = 0;
  int64_t grows_ = 0;
  int64_t shrinks_ = 0;

  obs::Gauge* cap_gauge_;
  obs::Counter* grow_counter_;
  obs::Counter* shrink_counter_;
};

}  // namespace dader::serve
