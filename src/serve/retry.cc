#include "serve/retry.h"

#include <algorithm>
#include <cmath>

namespace dader::serve {

double BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng* rng) {
  DADER_CHECK_GE(attempt, 1);
  const double exp =
      policy.base_backoff_ms * std::pow(2.0, static_cast<double>(attempt - 1));
  const double capped = std::min(exp, policy.max_backoff_ms);
  const double jitter_frac = std::clamp(policy.jitter_frac, 0.0, 1.0);
  const double scale =
      rng != nullptr && jitter_frac > 0.0
          ? 1.0 - jitter_frac * rng->NextDouble()
          : 1.0;
  return std::max(0.0, capped * scale);
}

RetrySchedule::RetrySchedule(RetryPolicy policy, uint64_t jitter_seed,
                             util::Clock* clock)
    : policy_(policy),
      jitter_rng_(jitter_seed),
      clock_(clock != nullptr ? clock : util::Clock::Real()) {}

double RetrySchedule::NextDelayMs(int attempt) {
  return BackoffDelayMs(policy_, attempt, &jitter_rng_);
}

void RetrySchedule::Sleep(double delay_ms) { clock_->SleepForMs(delay_ms); }

}  // namespace dader::serve
