#include "serve/circuit_breaker.h"

#include "util/logging.h"

namespace dader::serve {

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config),
      m_to_open_(obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("serve.breaker.transitions.total", "to", "open"),
          "Circuit-breaker state transitions", "transitions")),
      m_to_half_open_(obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("serve.breaker.transitions.total", "to",
                           "half-open"),
          "Circuit-breaker state transitions", "transitions")),
      m_to_closed_(obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("serve.breaker.transitions.total", "to", "closed"),
          "Circuit-breaker state transitions", "transitions")) {}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::TripLocked() {
  state_ = BreakerState::kOpen;
  opened_at_ = Clock::now();
  failure_streak_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  ++trips_;
  m_to_open_->Increment();
}

bool CircuitBreaker::AllowPrimary() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - opened_at_)
              .count();
      if (elapsed_ms < config_.cooldown_ms) return false;
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      probe_in_flight_ = true;
      m_to_half_open_->Increment();
      DADER_LOG(Info) << "circuit breaker half-open: probing primary";
      return true;
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      failure_streak_ = 0;
      break;
    case BreakerState::kHalfOpen:
      // Only the one admitted probe may advance the accounting. A stale
      // success — a call admitted back when the breaker was still closed,
      // or a double report for one probe — must not count, or concurrent
      // successes could close the breaker without any real probing.
      if (!probe_in_flight_) break;
      probe_in_flight_ = false;
      if (++probe_successes_ >= config_.half_open_successes) {
        state_ = BreakerState::kClosed;
        failure_streak_ = 0;
        m_to_closed_->Increment();
        DADER_LOG(Info) << "circuit breaker closed: primary recovered";
      }
      break;
    case BreakerState::kOpen:
      // Stale report from a call admitted before the trip; ignore.
      break;
  }
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++failure_streak_ >= config_.failure_threshold) {
        DADER_LOG(Warning) << "circuit breaker tripped after "
                           << config_.failure_threshold
                           << " consecutive primary failures";
        TripLocked();
      }
      break;
    case BreakerState::kHalfOpen:
      // Same stale-report guard as OnSuccess: only the admitted probe's
      // failure re-opens; a leftover failure report from the closed era
      // must not cancel a probe it never was.
      if (!probe_in_flight_) break;
      DADER_LOG(Warning) << "circuit breaker re-opened: probe failed";
      TripLocked();
      break;
    case BreakerState::kOpen:
      break;  // stale report; already open
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace dader::serve
