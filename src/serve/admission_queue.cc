#include "serve/admission_queue.h"

#include <algorithm>
#include <string>

namespace dader::serve {

namespace {

obs::Gauge* DepthGauge(int shard) {
  auto& reg = obs::MetricsRegistry::Default();
  if (shard < 0) {
    return reg.GetGauge("serve.queue.depth",
                        "Requests currently queued for batching", "requests");
  }
  return reg.GetGauge(
      obs::LabeledName("serve.shard.queue.depth", "shard",
                       std::to_string(shard)),
      "Requests currently queued for batching on the shard", "requests");
}

}  // namespace

AdmissionQueue::AdmissionQueue(size_t capacity, int shard)
    : capacity_(capacity), depth_gauge_(DepthGauge(shard)) {}

bool AdmissionQueue::TryPush(PendingRequest& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(req));
    PublishDepthLocked();
  }
  ready_cv_.notify_one();
  return true;
}

std::vector<PendingRequest> AdmissionQueue::PopBatch(size_t max_batch,
                                                     double linger_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // closed and drained

  // Linger briefly so sub-batch-size bursts still batch together; stop as
  // soon as a full batch is available.
  if (queue_.size() < max_batch && linger_ms > 0.0) {
    ready_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(linger_ms),
        [this, max_batch] { return closed_ || queue_.size() >= max_batch; });
  }

  std::vector<PendingRequest> batch;
  const size_t take = std::min(max_batch, queue_.size());
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  PublishDepthLocked();
  return batch;
}

std::vector<PendingRequest> AdmissionQueue::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  PublishDepthLocked();
  return out;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dader::serve
