#include "serve/sharded_service.h"

#include <utility>

#include "core/quantize.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dader::serve {

ShardedMatchService::ShardedMatchService(
    std::vector<std::unique_ptr<MatchService>> shards)
    : shards_(std::move(shards)) {}

Result<std::unique_ptr<ShardedMatchService>> ShardedMatchService::Create(
    ShardedServeConfig config, data::Schema schema_a, data::Schema schema_b,
    core::DaModel primary, std::unique_ptr<core::DaModel> fallback) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Quantize the loaded model once, before any replica is stamped out:
  // every shard then shares the same frozen int8 state (CloneQuantized)
  // instead of re-calibrating per shard. Startup calibration failure is
  // non-fatal — the fleet serves fp32 and each shard counts a rollback
  // (the per-shard ctor retries, fails the same deterministic gate, and
  // falls back).
  if (config.shard.quantize) {
    Status quantized =
        MatchService::QuantizeForServing(config.shard, &primary);
    if (!quantized.ok()) {
      DADER_LOG(Warning) << "sharded startup quantization rolled back: "
                         << quantized.ToString();
    }
  }
  std::vector<std::unique_ptr<MatchService>> shards;
  shards.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    const bool last = i == config.num_shards - 1;
    ServeConfig shard_config = config.shard;
    shard_config.shard_index = i;
    // Decorrelate retry jitter across shards; decisions are rng-free
    // (dropout is off in serving), so this cannot affect match output.
    shard_config.seed = config.shard.seed + static_cast<uint64_t>(i);

    // The last shard adopts the original modules; the others serve deep
    // copies. Replica weights are bit-identical either way.
    core::DaModel replica;
    if (last) {
      replica = std::move(primary);
    } else {
      // CloneQuantized == CloneModel plus sharing any attached int8 state.
      DADER_ASSIGN_OR_RETURN(replica,
                             core::CloneQuantized(primary, shard_config.seed));
    }
    std::unique_ptr<core::DaModel> fallback_replica;
    if (fallback != nullptr) {
      if (last) {
        fallback_replica = std::move(fallback);
      } else {
        core::DaModel clone;
        DADER_ASSIGN_OR_RETURN(
            clone, core::CloneModel(*fallback, shard_config.seed ^ 0xfbULL));
        fallback_replica =
            std::make_unique<core::DaModel>(std::move(clone));
      }
    }
    shards.push_back(std::make_unique<MatchService>(
        std::move(shard_config), schema_a, schema_b, std::move(replica),
        std::move(fallback_replica)));
  }
  return std::unique_ptr<ShardedMatchService>(
      new ShardedMatchService(std::move(shards)));
}

int ShardedMatchService::ShardFor(const MatchRequest& request) const {
  return ShardForPair(request.a, request.b,
                      static_cast<int>(shards_.size()));
}

std::future<MatchResponse> ShardedMatchService::SubmitAsync(
    MatchRequest request) {
  const int shard = ShardFor(request);
  return shards_[static_cast<size_t>(shard)]->SubmitAsync(
      std::move(request));
}

MatchResponse ShardedMatchService::Match(MatchRequest request) {
  return SubmitAsync(std::move(request)).get();
}

std::vector<MatchResponse> ShardedMatchService::MatchBatch(
    std::vector<MatchRequest> requests) {
  std::vector<std::future<MatchResponse>> futures;
  futures.reserve(requests.size());
  for (MatchRequest& request : requests) {
    futures.push_back(SubmitAsync(std::move(request)));
  }
  std::vector<MatchResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

Status ShardedMatchService::ReloadModel(const std::string& path) {
  obs::TraceSpan fanout_span("serve.reload.fanout");
  // Stage + validate the checkpoint exactly once; every shard then adopts
  // a deep copy of the validated staging model. Shard 0's canary runs
  // first, so a bad-but-loadable checkpoint is rejected before any shard
  // swaps.
  DADER_ASSIGN_OR_RETURN(core::DaModel staged,
                         shards_[0]->StageCheckpoint(path));
  // Quantize the staged model once; replicas share the state. Unlike
  // startup, a reload-time calibration failure rejects the checkpoint
  // (shard 0's AdoptPrimary would hit the same deterministic gate) — the
  // old model keeps serving on every shard.
  if (shards_[0]->config().quantize) {
    Status quantized =
        MatchService::QuantizeForServing(shards_[0]->config(), &staged);
    if (!quantized.ok()) {
      DADER_LOG(Error) << "reload fan-out aborted (quantization): "
                       << quantized.ToString();
      return Status(quantized.code(),
                    "model reload rolled back: quantization failed: " +
                        quantized.message());
    }
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    core::DaModel replica;
    if (i + 1 == shards_.size()) {
      replica = std::move(staged);
    } else {
      DADER_ASSIGN_OR_RETURN(
          replica,
          core::CloneQuantized(staged, shards_[i]->config().seed ^ 0x5e7fULL));
    }
    Status adopted = shards_[i]->AdoptPrimary(std::move(replica));
    if (!adopted.ok()) {
      // Deterministic canary on identical replicas: only i == 0 can get
      // here, before any shard swapped. Guarded anyway.
      DADER_LOG(Error) << "reload fan-out aborted at shard " << i << ": "
                       << adopted.ToString();
      return adopted;
    }
  }
  DADER_LOG(Info) << "model reloaded on " << shards_.size()
                  << " shard(s) from " << path;
  return Status::OK();
}

void ShardedMatchService::Stop() {
  for (auto& shard : shards_) shard->Stop();
}

ServeStats ShardedMatchService::stats() const {
  ServeStats total;
  for (const auto& shard : shards_) {
    const ServeStats s = shard->stats();
    total.admitted += s.admitted;
    total.shed += s.shed;
    total.completed += s.completed;
    total.deadline_expired += s.deadline_expired;
    total.degraded += s.degraded;
    total.primary_failures += s.primary_failures;
    total.retries += s.retries;
    total.breaker_trips += s.breaker_trips;
    total.reloads += s.reloads;
    total.reload_rollbacks += s.reload_rollbacks;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.quant_calibrations += s.quant_calibrations;
    total.quant_rollbacks += s.quant_rollbacks;
  }
  return total;
}

}  // namespace dader::serve
