#include "tensor/optimizer.h"

#include <cmath>

namespace dader {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    DADER_CHECK(p.defined());
    DADER_CHECK_MSG(p.requires_grad(), "optimizer parameter without grad");
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      for (auto& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

SgdOptimizer::SgdOptimizer(std::vector<Tensor> params, float lr,
                           float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.resize(params_.size());
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;  // never touched by any loss this step
    auto& vel = velocity_[i];
    if (momentum_ != 0.0f && vel.size() != p.vec().size()) {
      vel.assign(p.vec().size(), 0.0f);
    }
    float* w = p.data();
    const std::vector<float>& g = p.grad();
    for (size_t j = 0; j < g.size(); ++j) {
      float update = g[j];
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + update;
        update = vel[j];
      }
      if (weight_decay_ != 0.0f) update += weight_decay_ * w[j];
      w[j] -= lr_ * update;
    }
  }
}

AdamOptimizer::AdamOptimizer(std::vector<Tensor> params, float lr, float beta1,
                             float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void AdamOptimizer::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().empty()) continue;
    if (m_[i].size() != p.vec().size()) {
      m_[i].assign(p.vec().size(), 0.0f);
      v_[i].assign(p.vec().size(), 0.0f);
    }
    float* w = p.data();
    const std::vector<float>& g = p.grad();
    for (size_t j = 0; j < g.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ != 0.0f) update += weight_decay_ * w[j];
      w[j] -= lr_ * update;
    }
  }
}

}  // namespace dader
