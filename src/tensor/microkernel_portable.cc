// Portable GEMM kernel tier: plain C++, compiles and runs on any CPU.
//
// The microkernel is the 8x32 register tile the blocked layer shipped with
// before the runtime-dispatch split: a branch-free rank-1-update loop that
// gcc/clang auto-vectorize under -O3 (and contract into FMA when the build
// targets an FMA-capable ISA). It stays the fallback when the host lacks
// AVX2, when the SIMD TUs were not compiled in (non-x86), or when
// DADER_CPU_ISA=portable pins the process here.
//
// The small_* kernels of this tier are the repo's original naive loops —
// kept verbatim, because they are also the correctness oracle the tests
// and benchmarks compare every other tier against (gemm.cc re-exports them
// as NaiveGemm*). Keeping oracle and portable-small-tier the same code
// means "portable direct path" and "naive baseline" cannot drift apart.

#include <cstdint>

#include "tensor/gemm_kernels.h"

namespace dader::cpu::internal {

namespace {

constexpr int kMr = 8;
constexpr int kNr = 32;

// C_tile += Apanel * Bpanel over one kc depth block, accumulators live in
// (spilled-to-stack or vector) registers for the whole depth. Depth `p`
// ascends strictly, which is what the cross-thread bit-identity contract
// rests on.
void MicroKernelPortable(int64_t kc, const float* apack, const float* bpack,
                         float* c, int64_t ldc) {
  float acc[kMr][kNr];
  for (int r = 0; r < kMr; ++r)
    for (int j = 0; j < kNr; ++j) acc[r][j] = c[r * ldc + j];
  for (int64_t p = 0; p < kc; ++p) {
    const float* bp = bpack + p * kNr;
    const float* ap = apack + p * kMr;
    for (int r = 0; r < kMr; ++r) {
      const float av = ap[r];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int r = 0; r < kMr; ++r)
    for (int j = 0; j < kNr; ++j) c[r * ldc + j] = acc[r][j];
}

// C[m,n] += A[m,k] * B[k,n]; i-k-j loop order for streaming access.
void NaiveNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,n] += A[m,k] * B[n,k]^T: per-element dot products.
void NaiveNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// C[m,n] += A[k,m]^T * B[k,n]: rank-1 updates over the depth.
void NaiveTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Cutoffs carried over from the pre-dispatch layer (measured for naive vs
// blocked, docs/PERF.md): NN/TN below 32768 flops lose to packing traffic;
// naive NT is a scalar-reduction cliff, so almost everything should block.
const GemmKernels kTable = {
    /*isa=*/Isa::kPortable,
    /*mr=*/kMr,
    /*nr=*/kNr,
    /*mc=*/64,
    /*kc=*/256,
    /*nc=*/512,
    /*microkernel=*/&MicroKernelPortable,
    /*small_nn=*/&NaiveNN,
    /*small_nt=*/&NaiveNT,
    /*small_tn=*/&NaiveTN,
    /*direct_cutoff_nn=*/32'768,
    /*direct_cutoff_nt=*/2'048,
    /*direct_cutoff_tn=*/32'768,
};

}  // namespace

const GemmKernels* PortableKernels() { return &kTable; }

}  // namespace dader::cpu::internal
