// Post-training int8 quantization state for Linear layers.
//
// Scheme (the standard asymmetric-activation / symmetric-weight recipe):
//
//   * Weights get per-output-channel symmetric s8 scales:
//     ws[j] = max_i |W[i,j]| / 127, wq[i,j] = clamp(round(W[i,j]/ws[j])).
//     Per-channel scales matter because ER models mix embedding-fed and
//     gate-fed Linears whose channel ranges differ by orders of magnitude.
//   * Activations get one per-tensor asymmetric u8 scale calibrated from a
//     few observed batches: the range is widened to include 0 so padding
//     and ReLU zeros quantize exactly to the zero point.
//
// The int32 GEMM output dequantizes in closed form:
//
//   y[i,j] = act.scale * ws[j] * (acc[i,j] - zp * colsum[j]) + bias[j]
//
// where colsum[j] = sum_p wq[p,j] folds the activation zero point out of
// the matmul (A_q = A/s + zp, so zp contributes zp * colsum per column).
// Bias stays fp32 — it is added after dequantization, so quantization error
// comes only from the two rounding steps.
//
// Determinism: quantized forwards are bit-identical across ISA tiers and
// thread counts (integer GEMM, see qgemm.h), and the dequant arithmetic is
// a fixed per-element float expression evaluated in one order.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/qgemm.h"

namespace dader::quant {

/// \brief Streaming min/max tracker used during calibration. Starts at
/// [0, 0] so the calibrated range always contains zero.
struct RangeObserver {
  float min_v = 0.0f;
  float max_v = 0.0f;
  int64_t count = 0;

  void Observe(const float* x, int64_t n);
};

/// \brief Per-tensor asymmetric u8 activation quantizer parameters.
struct ActQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;  // in [0, 255]
};

/// \brief Derives scale/zero-point from a calibrated range. The range is
/// clamped to include 0; a degenerate (empty) range yields scale 1, zp 0.
ActQuant ActQuantFromRange(float min_v, float max_v);

/// \brief Frozen int8 state for one Linear layer. Weight layout matches
/// nn::Linear::weight_ ([in, out] row-major), which is exactly the dense
/// B[k,n] operand QGemmNN expects — no transpose at quantization time.
struct QuantizedLinear {
  int64_t in = 0;
  int64_t out = 0;
  std::vector<int8_t> weight_q;     // [in, out]
  std::vector<float> weight_scale;  // [out], per output channel
  std::vector<int32_t> col_sum;     // [out], sum_p weight_q[p, j]
  std::vector<float> bias;          // [out] fp32; empty means zero bias
  ActQuant act;                     // input-activation quantizer
  int32_t pair_bound = 0;           // MaddubsPairBound(weight_q) cache
};

/// \brief Quantizes an fp32 weight matrix `w` ([in, out] row-major) with
/// optional `bias` ([out], nullable) against the calibrated input range
/// [act_min, act_max]. Never fails: zero columns get scale 1.
std::shared_ptr<const QuantizedLinear> QuantizeLinearWeights(
    const float* w, int64_t in, int64_t out, const float* bias, float act_min,
    float act_max);

/// \brief y[m, out] = dequant(QGemmNN(quant(x[m, in]), weight_q)) + bias.
/// Quantizes the batch to u8 (tracking the batch max for the acc16 guard),
/// runs the dispatched int8 GEMM, and dequantizes into `y`.
void QLinearForward(const QuantizedLinear& q, const float* x, int64_t m,
                    float* y, const qgemm::QGemmOptions& options = {});

}  // namespace dader::quant
