// Int8 GEMM entry points: u8 activations x s8 weights -> int32 accumulators.
//
// This is the kernel substrate of the post-training-quantization serving
// path (tensor/quant.h dequantizes the int32 output back to fp32). The
// dispatch structure mirrors gemm.h: a per-ISA kernel table
// (cpu::QKernelsFor), a direct unpacked kernel below a measured cutoff, and
// pool fan-out over rows for large problems — but the determinism contract
// is stronger than fp32's: integer accumulation has one right answer, so
// results are bit-identical across ISA tiers, thread counts, and the
// fast/exact kernel choice (see the saturation guard below).
//
// Acc16 fast path and the saturation guard: the AVX2/AVX-512 `maddubs`
// kernels form u8*s8 products pairwise in saturating int16 before widening.
// A pair sum |a0*w0 + a1*w1| > 32767 would clip — so callers precompute
// MaddubsPairBound(B) once per weight matrix (weights are static at serve
// time) and pass the batch's max activation value; the driver admits the
// fast kernel only when a_max * pair_bound <= 32767, a deterministic
// integer check, and otherwise falls back to the exact widening kernel.
// AVX-512VNNI and the portable tier widen to int32 directly, so their fast
// path is unconditionally exact and the guard short-circuits.

#pragma once

#include <cstdint>

#include "tensor/cpu_dispatch.h"

namespace dader {
class ThreadPool;
}

namespace dader::qgemm {

/// \brief Kernel-choice override for tests and benches; production callers
/// leave kAuto (direct-cutoff dispatch + saturation-guarded fast path).
enum class QGemmForce { kAuto, kFast, kExact, kDirect };

/// \brief Execution knobs; thresholds are in int8 products (m*n*k), the
/// int8 analog of gemm.h's FLOP thresholds (one product = 2 int ops).
struct QGemmOptions {
  /// Pool for row fan-out; null means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Minimum m*n*k before a call fans out to the pool; each task re-packs
  /// B into its own thread-local scratch, so small problems amortize
  /// nothing (same rationale as gemm's parallel_min_flops).
  int64_t parallel_min_products = 4'000'000;
  /// Floor on products per spawned task; <= 0 disables the cap.
  int64_t min_products_per_task = 8'000'000;
  /// Cap fan-out at std::thread::hardware_concurrency(); tests that force
  /// the parallel path on narrow machines set this false.
  bool respect_hardware_concurrency = true;
  QGemmForce force = QGemmForce::kAuto;
};

/// \brief Max over all columns and aligned activation pairs of
/// |w[p][j]| + |w[p+1][j]| (p even; a trailing odd row pairs with zero).
/// The acc16 fast path is admissible for a batch with max activation value
/// a_max iff a_max * bound <= 32767. Compute once per weight matrix.
int32_t MaddubsPairBound(const int8_t* b, int64_t k, int64_t n);

/// \brief Row stride the driver requires of A: k rounded up to
/// cpu::kQGemmKPad. Bytes [k, PaddedLda(k)) of every row must be zero.
inline int64_t PaddedLda(int64_t k) {
  return (k + cpu::kQGemmKPad - 1) / cpu::kQGemmKPad * cpu::kQGemmKPad;
}

/// \brief C[m,n] (int32, fully overwritten) = A(u8)[m,k] * B(s8)[k,n].
/// `a` has row stride `lda` == PaddedLda(k) with zeroed tail bytes; `b` is
/// dense row-major. `a_max` is the largest value present in A (255 is
/// always safe); `pair_bound` is MaddubsPairBound(b, k, n) (passing
/// 32768 or more disables the fast path unconditionally).
void QGemmNN(int64_t m, int64_t n, int64_t k, const uint8_t* a, int64_t lda,
             const int8_t* b, int32_t* c, int32_t a_max, int32_t pair_bound,
             const QGemmOptions& options = {});

/// \brief Portable scalar oracle (always exact); the reference the SIMD
/// tiers are tested against bit-for-bit.
void NaiveQGemmNN(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                  int64_t lda, const int8_t* b, int32_t* c);

}  // namespace dader::qgemm
