// Blocked, thread-parallel GEMM kernels for the tensor substrate.
//
// Every matrix product in the model zoo — the transformer and BiGRU feature
// extractors, the MLP matcher, all six aligners — funnels through the three
// accumulate kernels here (plus their batched forms). They replace the
// single-threaded scalar loops that used to live in ops.cc.
//
// Design (see docs/PERF.md for the full writeup):
//
//   * Cache blocking: the classic MC/KC/NC three-level scheme. A KCxNC
//     block of B is packed into contiguous NR-wide column panels, an MCxKC
//     block of A into MR-tall row panels, and a register-tiled MRxNR
//     microkernel runs over the packed panels. Packing gives the
//     microkernel purely contiguous loads, which is what lets it
//     auto-vectorize under -O3 -march=native; it is also how the NT and TN
//     variants avoid strided scalar dot products — transposition happens
//     in the pack, the microkernel is always the same.
//   * Register tiling: the microkernel keeps an MRxNR accumulator tile in
//     vector registers across the whole KC depth, eliminating the
//     per-iteration C-row load/store traffic that capped the old i-k-j
//     loop. There is no `a == 0.0f` skip branch: the old kernel's guard
//     broke the compiler's ability to keep the loop body branch-free.
//   * Threading: above GemmOptions::parallel_min_flops the M dimension is
//     split into MR-aligned row panels distributed over a util::ThreadPool
//     (batched variants split across the batch dimension instead). The
//     fan-out width is additionally capped by min_flops_per_task and by
//     std::thread::hardware_concurrency(), so mid-sized problems on narrow
//     machines stay single-threaded instead of paying dispatch + redundant
//     B-packing overhead for no parallel speedup. Each
//     output row is owned by exactly one task and per-element accumulation
//     order (k ascending) is independent of the partition, so results are
//     bit-identical run-to-run AND across thread counts. Calls from inside
//     a pool worker run serially (ThreadPool::InWorkerThread) — nested
//     waits would deadlock.
//   * Observability: every public call observes its wall duration into the
//     `tensor.gemm.ms{class=...}` histograms (docs/OBSERVABILITY.md),
//     where class buckets the problem by FLOP count.
//
// All kernels ACCUMULATE (C += ...) into row-major, fully packed (leading
// dimension == column count) operands, matching how ops.cc uses them for
// both forward products and backward gradient accumulation.

#pragma once

#include <cstdint>

namespace dader {
class ThreadPool;
}

namespace dader::gemm {

/// \brief Execution knobs; the defaults are what ops.cc uses.
struct GemmOptions {
  /// Pool for row-panel / batch parallelism; null means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Minimum 2*m*n*k FLOP count before a call fans out to the pool;
  /// below it the blocked kernel runs on the calling thread. Raised from
  /// the original 2 MFLOP after BENCH_gemm.json showed fan-out losing to
  /// serial at 256^3 (33 MFLOP) on narrow machines: each task redundantly
  /// packs the full B panel, so small problems amortize nothing.
  int64_t parallel_min_flops = 8'000'000;
  /// Floor on FLOPs per spawned task: the fan-out width is capped at
  /// flops / min_flops_per_task, so dispatch + redundant-packing overhead
  /// stays a small fraction of useful work per task. <= 0 disables.
  int64_t min_flops_per_task = 16'000'000;
  /// Also cap the fan-out width at std::thread::hardware_concurrency():
  /// oversubscribing physical cores always loses (the extra tasks just
  /// interleave on one core and re-pack B for nothing). Tests that need to
  /// force the parallel path on narrow machines set this to false.
  bool respect_hardware_concurrency = true;
};

// ---------------------------------------------------------------------------
// Blocked kernels. Dimensions are always (m, n, k): C is m x n, k is the
// contraction depth.
// ---------------------------------------------------------------------------

/// \brief C[m,n] += A[m,k] * B[k,n].
void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

/// \brief C[m,n] += A[m,k] * B[n,k]^T (B stored row-major n x k).
/// The backward pass dA = dC * B^T is this shape.
void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

/// \brief C[m,n] += A[k,m]^T * B[k,n] (A stored row-major k x m).
/// The backward pass dB = A^T * dC is this shape.
void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

// ---------------------------------------------------------------------------
// Batched kernels: bsz independent products over contiguous slabs
// (element i starts at offset i*m*k / i*k*n / i*m*n). Parallelism fans out
// across the batch dimension; each element's product is serial, so the
// determinism guarantee above carries over unchanged.
// ---------------------------------------------------------------------------

/// \brief C[i] += A[i] * B[i] with A[i] m x k, B[i] k x n.
void BatchGemmNN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

/// \brief C[i] += A[i] * B[i]^T with A[i] m x k, B[i] n x k.
void BatchGemmNT(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

/// \brief C[i] += A[i]^T * B[i] with A[i] k x m, B[i] k x n.
void BatchGemmTN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

// ---------------------------------------------------------------------------
// Naive reference kernels — the seed repo's original scalar loops, kept
// verbatim (same signatures as above) as the correctness oracle for
// tests/tensor/gemm_test.cc and the baseline for bench/bench_gemm.cc and
// the `ctest -L perf` smoke test. Single-threaded, no instrumentation.
// ---------------------------------------------------------------------------

void NaiveGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void NaiveGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void NaiveGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);

}  // namespace dader::gemm
