// Blocked, thread-parallel GEMM kernels for the tensor substrate, with
// runtime CPU-capability dispatch.
//
// Every matrix product in the model zoo — the transformer and BiGRU feature
// extractors, the MLP matcher, all six aligners — funnels through the three
// accumulate kernels here (plus their batched forms). They replace the
// single-threaded scalar loops that used to live in ops.cc.
//
// Design (see docs/PERF.md for the full writeup):
//
//   * Runtime ISA dispatch (tensor/cpu_dispatch.h): every call executes
//     through a per-tier kernel table — explicit AVX-512F or AVX2+FMA
//     intrinsic microkernels, or the portable auto-vectorized fallback —
//     selected once per process by cpuid probe and overridable via
//     DADER_CPU_ISA. The SIMD kernels live in dedicated TUs compiled with
//     per-file ISA flags, so the rest of the binary never emits an
//     instruction the host might lack.
//   * Two execution tiers per call, split at a per-ISA measured break-even:
//     - Direct: an unpacked SIMD kernel (row-streaming FMA for NN/TN,
//       lane-wide dot products for NT and narrow-N shapes). No packing, no
//       scratch — this is where small and skinny shapes (matcher head, GRU
//       step, single served pairs) stop losing their time to setup.
//     - Blocked: the classic BLIS-style MC/KC/NC cache-blocked path. A
//       KCxNC block of B is packed into NR-wide column panels, an MCxKC
//       block of A into MR-tall row panels, and the tier's register-tiled
//       MRxNR microkernel runs over the packed panels. Packing is where
//       the NT and TN variants transpose, so the microkernel is always the
//       same contiguous-load loop.
//   * Batch-strided small GEMM: the batched entry points decide the tier
//     once per CALL, then stride whole runs of batch elements through the
//     chosen kernel — attention-shaped batches (128 x 64x16x64) no longer
//     pay per-element dispatch and packing setup.
//   * Threading: above GemmOptions::parallel_min_flops the output is split
//     into a 2D (M x N) grid of register-tile-aligned cells, over-decomposed
//     ~4 cells per planned task and distributed via util::ThreadPool
//     (batched variants split across the batch dimension instead). The
//     fan-out width is capped by min_flops_per_task and by
//     std::thread::hardware_concurrency(), so mid-sized problems on narrow
//     machines stay single-threaded instead of paying dispatch overhead for
//     no parallel speedup. Each output element is owned by exactly one cell,
//     cell boundaries are register-tile-aligned, and per-element
//     accumulation order (k ascending) is independent of the partition, so
//     results are bit-identical run-to-run AND across thread counts within
//     an ISA tier. Calls from inside a pool worker run serially
//     (ThreadPool::InWorkerThread) — nested waits would deadlock.
//   * Observability: every public call observes its wall duration into the
//     `tensor.gemm.ms{class=...}` histograms and counts its dispatch path
//     and ISA tier in `tensor.gemm.kernel.calls{path=...}` /
//     `tensor.gemm.kernel.isa_calls{isa=...}` (docs/OBSERVABILITY.md).
//
// All kernels ACCUMULATE (C += ...) into row-major, fully packed (leading
// dimension == column count) operands, matching how ops.cc uses them for
// both forward products and backward gradient accumulation.

#pragma once

#include <cstdint>

namespace dader {
class ThreadPool;
}

namespace dader::gemm {

/// \brief Overrides the direct-vs-blocked tier choice. kAuto (production)
/// dispatches on the active ISA's measured break-even; the forced values
/// exist for benchmarks, threshold tuning, and the perf guards, which need
/// to measure one tier in isolation.
enum class GemmForcePath { kAuto, kDirect, kBlocked };

/// \brief Execution knobs; the defaults are what ops.cc uses.
struct GemmOptions {
  /// Pool for cell / batch parallelism; null means ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Minimum 2*m*n*k FLOP count before a call fans out to the pool;
  /// below it the blocked kernel runs on the calling thread. Raised from
  /// the original 2 MFLOP after BENCH_gemm.json showed fan-out losing to
  /// serial at 256^3 (33 MFLOP) on narrow machines: each task redundantly
  /// packs B panels, so small problems amortize nothing.
  int64_t parallel_min_flops = 8'000'000;
  /// Floor on FLOPs per spawned task: the fan-out width is capped at
  /// flops / min_flops_per_task, so dispatch + redundant-packing overhead
  /// stays a small fraction of useful work per task. <= 0 disables.
  int64_t min_flops_per_task = 16'000'000;
  /// Also cap the fan-out width at std::thread::hardware_concurrency():
  /// oversubscribing physical cores always loses (the extra tasks just
  /// interleave on one core and re-pack panels for nothing). Tests that
  /// need to force the parallel path on narrow machines set this to false.
  bool respect_hardware_concurrency = true;
  /// Direct/blocked tier override for benchmarks and tests; leave kAuto in
  /// production code.
  GemmForcePath force_path = GemmForcePath::kAuto;
};

// ---------------------------------------------------------------------------
// Blocked kernels. Dimensions are always (m, n, k): C is m x n, k is the
// contraction depth.
// ---------------------------------------------------------------------------

/// \brief C[m,n] += A[m,k] * B[k,n].
void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

/// \brief C[m,n] += A[m,k] * B[n,k]^T (B stored row-major n x k).
/// The backward pass dA = dC * B^T is this shape.
void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

/// \brief C[m,n] += A[k,m]^T * B[k,n] (A stored row-major k x m).
/// The backward pass dB = A^T * dC is this shape.
void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options = {});

// ---------------------------------------------------------------------------
// Batched kernels: bsz independent products over contiguous slabs
// (element i starts at offset i*m*k / i*k*n / i*m*n). The execution tier is
// chosen once per call and elements stride through it in contiguous runs;
// parallelism fans out across the batch dimension. Each element's product
// is serial, so the determinism guarantee above carries over unchanged.
// ---------------------------------------------------------------------------

/// \brief C[i] += A[i] * B[i] with A[i] m x k, B[i] k x n.
void BatchGemmNN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

/// \brief C[i] += A[i] * B[i]^T with A[i] m x k, B[i] n x k.
void BatchGemmNT(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

/// \brief C[i] += A[i]^T * B[i] with A[i] k x m, B[i] k x n.
void BatchGemmTN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options = {});

// ---------------------------------------------------------------------------
// Naive reference kernels — the seed repo's original scalar loops, kept
// verbatim (now housed in microkernel_portable.cc as the portable tier's
// direct kernels) as the correctness oracle for tests/tensor/gemm_test.cc
// and the baseline for bench/bench_gemm.cc and the `ctest -L perf` guards.
// Single-threaded, no instrumentation, never SIMD-dispatched.
// ---------------------------------------------------------------------------

void NaiveGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void NaiveGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void NaiveGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);

}  // namespace dader::gemm
