#include "tensor/qgemm.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "tensor/gemm_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dader::qgemm {

namespace {

// ---------------------------------------------------------------------------
// Instrumentation (`tensor.qgemm.*`, see docs/OBSERVABILITY.md): wall
// duration per public call, plus per-dispatch-path and per-ISA counters.
// The "exact" path counter is the saturation-fallback signal — with a
// VNNI or portable tier it stays at zero because fast never saturates.
// ---------------------------------------------------------------------------

obs::Histogram* QGemmHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "tensor.qgemm.ms", "Int8 GEMM call duration", "ms",
      std::vector<double>{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
                          25, 50});
  return h;
}

class ScopedQGemmTimer {
 public:
  ScopedQGemmTimer() : start_(Clock::now()) {}
  ~ScopedQGemmTimer() {
    QGemmHistogram()->Observe(
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

enum class Path { kDirect, kFast, kExact };

void CountQCall(Path path, cpu::Isa isa) {
  auto& reg = obs::MetricsRegistry::Default();
  static constexpr const char* kPathHelp =
      "Int8 GEMM calls by kernel path (direct unpacked vs acc16 fast vs "
      "exact widening fallback; 'exact' counts saturation-guard fallbacks)";
  static constexpr const char* kIsaHelp =
      "Int8 GEMM calls by the SIMD ISA tier that executed them";
  static obs::Counter* direct = reg.GetCounter(
      obs::LabeledName("tensor.qgemm.kernel.calls", "path", "direct"),
      kPathHelp, "calls");
  static obs::Counter* fast = reg.GetCounter(
      obs::LabeledName("tensor.qgemm.kernel.calls", "path", "fast"),
      kPathHelp, "calls");
  static obs::Counter* exact = reg.GetCounter(
      obs::LabeledName("tensor.qgemm.kernel.calls", "path", "exact"),
      kPathHelp, "calls");
  static obs::Counter* isa_calls[] = {
      reg.GetCounter(obs::LabeledName("tensor.qgemm.kernel.isa_calls", "isa",
                                      "portable"),
                     kIsaHelp, "calls"),
      reg.GetCounter(
          obs::LabeledName("tensor.qgemm.kernel.isa_calls", "isa", "avx2"),
          kIsaHelp, "calls"),
      reg.GetCounter(
          obs::LabeledName("tensor.qgemm.kernel.isa_calls", "isa", "avx512"),
          kIsaHelp, "calls"),
  };
  switch (path) {
    case Path::kDirect:
      direct->Increment();
      break;
    case Path::kFast:
      fast->Increment();
      break;
    case Path::kExact:
      exact->Increment();
      break;
  }
  isa_calls[static_cast<int>(isa)]->Increment();
}

// Deterministic fan-out width: same inputs -> same task count. Irrelevant
// to the result bits (integer math), only to wall time.
int64_t PlanTasks(int64_t m, int64_t products, ThreadPool* pool,
                  const QGemmOptions& options) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      ThreadPool::InWorkerThread() ||
      products < options.parallel_min_products) {
    return 1;
  }
  int64_t limit = static_cast<int64_t>(pool->num_threads());
  if (options.respect_hardware_concurrency) {
    const int64_t hw =
        static_cast<int64_t>(std::thread::hardware_concurrency());
    if (hw > 0) limit = std::min(limit, hw);
  }
  if (options.min_products_per_task > 0) {
    limit = std::min(limit, products / options.min_products_per_task);
  }
  return std::max<int64_t>(1, std::min(limit, m));
}

}  // namespace

int32_t MaddubsPairBound(const int8_t* b, int64_t k, int64_t n) {
  int32_t bound = 0;
  for (int64_t p = 0; p < k; p += 2) {
    const int8_t* row0 = b + p * n;
    const int8_t* row1 = p + 1 < k ? b + (p + 1) * n : nullptr;
    for (int64_t j = 0; j < n; ++j) {
      int32_t sum = std::abs(static_cast<int32_t>(row0[j]));
      if (row1 != nullptr) sum += std::abs(static_cast<int32_t>(row1[j]));
      bound = std::max(bound, sum);
    }
  }
  return bound;
}

void NaiveQGemmNN(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                  int64_t lda, const int8_t* b, int32_t* c) {
  cpu::internal::PortableQKernels()->exact(m, n, k, a, lda, b, c);
}

void QGemmNN(int64_t m, int64_t n, int64_t k, const uint8_t* a, int64_t lda,
             const int8_t* b, int32_t* c, int32_t a_max, int32_t pair_bound,
             const QGemmOptions& options) {
  if (m <= 0 || n <= 0) return;
  DADER_CHECK(lda >= PaddedLda(k));
  if (k <= 0) {
    std::fill(c, c + m * n, 0);
    return;
  }
  const cpu::QGemmKernels& kk = cpu::ActiveQKernels();
  const int64_t products = m * n * k;
  ScopedQGemmTimer timer;

  cpu::QGemmFn kernel;
  Path path;
  if (options.force == QGemmForce::kDirect ||
      (options.force == QGemmForce::kAuto && products < kk.direct_cutoff)) {
    kernel = kk.direct;
    path = Path::kDirect;
  } else if (options.force == QGemmForce::kFast ||
             (options.force == QGemmForce::kAuto &&
              (kk.fast_is_exact ||
               static_cast<int64_t>(a_max) * pair_bound <= 32767))) {
    kernel = kk.fast;
    path = Path::kFast;
  } else {
    kernel = kk.exact;
    path = Path::kExact;
  }
  CountQCall(path, kk.isa);

  ThreadPool* pool = options.pool != nullptr ? options.pool
                                             : ThreadPool::Global();
  const int64_t tasks = PlanTasks(m, products, pool, options);
  if (tasks <= 1) {
    kernel(m, n, k, a, lda, b, c);
    return;
  }
  // Row fan-out: kernels treat rows independently and accumulate in int32,
  // so any split produces the same bits as the serial call. Each task packs
  // B into its own thread-local scratch (redundant work, same trade as the
  // fp32 blocked path).
  ParallelChunks(pool, static_cast<size_t>(tasks), [&](size_t t) {
    const int64_t r0 = static_cast<int64_t>(t) * m / tasks;
    const int64_t r1 = (static_cast<int64_t>(t) + 1) * m / tasks;
    if (r1 > r0) {
      kernel(r1 - r0, n, k, a + r0 * lda, lda, b, c + r0 * n);
    }
  });
}

}  // namespace dader::qgemm
