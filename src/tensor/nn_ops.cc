#include "tensor/nn_ops.h"

#include <algorithm>
#include <cmath>

namespace dader::ops {

namespace {

using internal::MakeOpNode;
using internal::TensorImpl;
using ImplPtr = std::shared_ptr<TensorImpl>;

// Rows/width decomposition treating the tensor as [rows, last_dim].
void LastDimSpans(const Tensor& a, int64_t* rows, int64_t* width) {
  DADER_CHECK_GE(a.rank(), 1u);
  *width = a.shape().back();
  DADER_CHECK_GT(*width, 0);
  *rows = a.numel() / *width;
}

// Fills `out` with row-wise softmax of `in` ([rows, width]).
void SoftmaxForward(const float* in, float* out, int64_t rows, int64_t width) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = in + r * width;
    float* y = out + r * width;
    float mx = x[0];
    for (int64_t j = 1; j < width; ++j) mx = std::max(mx, x[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      y[j] = std::exp(x[j] - mx);
      denom += y[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < width; ++j) y[j] *= inv;
  }
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  int64_t rows, width;
  LastDimSpans(a, &rows, &width);
  auto out = MakeOpNode(a.shape(), {a.impl()});
  SoftmaxForward(a.data(), out->data.data(), rows, width);
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, rows, width](const TensorImpl& self) {
      pa->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self.data.data() + r * width;
        const float* g = self.grad.data() + r * width;
        float* dx = pa->grad.data() + r * width;
        float dot = 0.0f;
        for (int64_t j = 0; j < width; ++j) dot += g[j] * y[j];
        for (int64_t j = 0; j < width; ++j) dx[j] += y[j] * (g[j] - dot);
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor LogSoftmax(const Tensor& a) {
  int64_t rows, width;
  LastDimSpans(a, &rows, &width);
  auto out = MakeOpNode(a.shape(), {a.impl()});
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = a.data() + r * width;
    float* y = out->data.data() + r * width;
    float mx = x[0];
    for (int64_t j = 1; j < width; ++j) mx = std::max(mx, x[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < width; ++j) denom += std::exp(x[j] - mx);
    const float lse = mx + std::log(denom);
    for (int64_t j = 0; j < width; ++j) y[j] = x[j] - lse;
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, rows, width](const TensorImpl& self) {
      pa->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = self.data.data() + r * width;  // log-probs
        const float* g = self.grad.data() + r * width;
        float* dx = pa->grad.data() + r * width;
        float gsum = 0.0f;
        for (int64_t j = 0; j < width; ++j) gsum += g[j];
        for (int64_t j = 0; j < width; ++j) {
          dx[j] += g[j] - std::exp(y[j]) * gsum;
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  int64_t rows, width;
  LastDimSpans(a, &rows, &width);
  DADER_CHECK_EQ(gamma.numel(), width);
  DADER_CHECK_EQ(beta.numel(), width);
  auto out = MakeOpNode(a.shape(), {a.impl(), gamma.impl(), beta.impl()});
  // Cache per-row normalized values and inverse stddev for backward.
  std::vector<float> xhat(a.vec().size());
  std::vector<float> inv_std(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = a.data() + r * width;
    float mean = 0.0f;
    for (int64_t j = 0; j < width; ++j) mean += x[j];
    mean /= static_cast<float>(width);
    float var = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      const float d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(width);
    const float istd = 1.0f / std::sqrt(var + eps);
    inv_std[static_cast<size_t>(r)] = istd;
    float* xh = xhat.data() + r * width;
    float* y = out->data.data() + r * width;
    for (int64_t j = 0; j < width; ++j) {
      xh[j] = (x[j] - mean) * istd;
      y[j] = gamma.data()[j] * xh[j] + beta.data()[j];
    }
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pg = gamma.impl(), pb = beta.impl();
    out->backward_fn = [pa, pg, pb, xhat = std::move(xhat),
                        inv_std = std::move(inv_std), rows,
                        width](const TensorImpl& self) {
      if (pg->requires_grad) pg->EnsureGrad();
      if (pb->requires_grad) pb->EnsureGrad();
      if (pa->requires_grad) pa->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float* g = self.grad.data() + r * width;
        const float* xh = xhat.data() + r * width;
        if (pg->requires_grad || pb->requires_grad) {
          for (int64_t j = 0; j < width; ++j) {
            if (pg->requires_grad) pg->grad[j] += g[j] * xh[j];
            if (pb->requires_grad) pb->grad[j] += g[j];
          }
        }
        if (pa->requires_grad) {
          // dL/dx = istd * (h - mean(h) - xhat * mean(h*xhat)),
          // where h = gamma * g.
          float mean_h = 0.0f, mean_hx = 0.0f;
          for (int64_t j = 0; j < width; ++j) {
            const float h = pg->data[j] * g[j];
            mean_h += h;
            mean_hx += h * xh[j];
          }
          mean_h /= static_cast<float>(width);
          mean_hx /= static_cast<float>(width);
          const float istd = inv_std[static_cast<size_t>(r)];
          float* dx = pa->grad.data() + r * width;
          for (int64_t j = 0; j < width; ++j) {
            const float h = pg->data[j] * g[j];
            dx[j] += istd * (h - mean_h - xh[j] * mean_hx);
          }
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int64_t>& ids) {
  DADER_CHECK_EQ(weight.rank(), 2u);
  const int64_t vocab = weight.dim(0), d = weight.dim(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  for (int64_t id : ids) {
    DADER_CHECK_GE(id, 0);
    DADER_CHECK_LT(id, vocab);
  }
  auto out = MakeOpNode({n, d}, {weight.impl()});
  for (int64_t i = 0; i < n; ++i) {
    std::copy(weight.data() + ids[static_cast<size_t>(i)] * d,
              weight.data() + (ids[static_cast<size_t>(i)] + 1) * d,
              out->data.data() + i * d);
  }
  if (out->requires_grad) {
    ImplPtr pw = weight.impl();
    out->backward_fn = [pw, ids, d](const TensorImpl& self) {
      pw->EnsureGrad();
      for (size_t i = 0; i < ids.size(); ++i) {
        const float* g = self.grad.data() + static_cast<int64_t>(i) * d;
        float* dst = pw->grad.data() + ids[i] * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += g[j];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training) {
  DADER_CHECK_GE(p, 0.0f);
  DADER_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  DADER_CHECK(rng != nullptr);
  auto out = MakeOpNode(a.shape(), {a.impl()});
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(a.vec().size());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->NextBool(p) ? 0.0f : scale;
    out->data[i] = a.data()[i] * mask[i];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, mask = std::move(mask)](const TensorImpl& self) {
      pa->EnsureGrad();
      for (size_t i = 0; i < mask.size(); ++i) {
        pa->grad[i] += self.grad[i] * mask[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor GradReverse(const Tensor& a, float lambda) {
  auto out = MakeOpNode(a.shape(), {a.impl()});
  out->data = a.vec();
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, lambda](const TensorImpl& self) {
      pa->EnsureGrad();
      for (size_t i = 0; i < self.grad.size(); ++i) {
        pa->grad[i] -= lambda * self.grad[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels) {
  DADER_CHECK_EQ(logits.rank(), 2u);
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DADER_CHECK_EQ(static_cast<size_t>(n), labels.size());
  std::vector<float> probs(logits.vec().size());
  SoftmaxForward(logits.data(), probs.data(), n, c);
  auto out = MakeOpNode({1}, {logits.impl()});
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    DADER_CHECK_GE(labels[static_cast<size_t>(i)], 0);
    DADER_CHECK_LT(labels[static_cast<size_t>(i)], c);
    const float p = probs[static_cast<size_t>(i * c + labels[static_cast<size_t>(i)])];
    loss -= std::log(std::max(p, 1e-12f));
  }
  out->data[0] = static_cast<float>(loss / static_cast<double>(n));
  if (out->requires_grad) {
    ImplPtr pl = logits.impl();
    out->backward_fn = [pl, probs = std::move(probs), labels, n,
                        c](const TensorImpl& self) {
      pl->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        float* dst = pl->grad.data() + i * c;
        const float* p = probs.data() + i * c;
        for (int64_t j = 0; j < c; ++j) dst[j] += g * p[j];
        dst[labels[static_cast<size_t>(i)]] -= g;
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& targets) {
  const int64_t n = logits.numel();
  DADER_CHECK_EQ(static_cast<size_t>(n), targets.size());
  auto out = MakeOpNode({1}, {logits.impl()});
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float z = logits.data()[i];
    const float y = targets[static_cast<size_t>(i)];
    // Stable formulation: max(z,0) - z*y + log(1 + exp(-|z|)).
    loss += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
  }
  out->data[0] = static_cast<float>(loss / static_cast<double>(n));
  if (out->requires_grad) {
    ImplPtr pl = logits.impl();
    out->backward_fn = [pl, targets, n](const TensorImpl& self) {
      pl->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        const float z = pl->data[static_cast<size_t>(i)];
        const float sig =
            z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                      : std::exp(z) / (1.0f + std::exp(z));
        pl->grad[static_cast<size_t>(i)] +=
            g * (sig - targets[static_cast<size_t>(i)]);
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor KnowledgeDistillationLoss(const Tensor& student_logits,
                                 const Tensor& teacher_logits,
                                 float temperature) {
  DADER_CHECK_EQ(student_logits.rank(), 2u);
  DADER_CHECK(student_logits.shape() == teacher_logits.shape());
  DADER_CHECK_GT(temperature, 0.0f);
  const int64_t n = student_logits.dim(0), c = student_logits.dim(1);
  const float t = temperature;

  // Temperature-softened distributions; teacher is a constant here.
  std::vector<float> p(teacher_logits.vec().size());   // teacher probs
  std::vector<float> q(student_logits.vec().size());   // student probs
  std::vector<float> scaled(student_logits.vec().size());
  for (size_t i = 0; i < scaled.size(); ++i) scaled[i] = teacher_logits.data()[i] / t;
  SoftmaxForward(scaled.data(), p.data(), n, c);
  for (size_t i = 0; i < scaled.size(); ++i) scaled[i] = student_logits.data()[i] / t;
  SoftmaxForward(scaled.data(), q.data(), n, c);

  // Only the student participates in the tape (teacher is detached by
  // construction of the loss: its gradient is defined to be zero).
  auto out = MakeOpNode({1}, {student_logits.impl()});
  double loss = 0.0;
  for (int64_t i = 0; i < n * c; ++i) {
    loss -= static_cast<double>(p[static_cast<size_t>(i)]) *
            std::log(std::max(q[static_cast<size_t>(i)], 1e-12f));
  }
  out->data[0] = static_cast<float>(t * t * loss / static_cast<double>(n));
  if (out->requires_grad) {
    ImplPtr ps = student_logits.impl();
    out->backward_fn = [ps, p = std::move(p), q = std::move(q), n, c,
                        t](const TensorImpl& self) {
      ps->EnsureGrad();
      // d/d(student_logits) = (t / n) * (q - p).
      const float g = self.grad[0] * t / static_cast<float>(n);
      for (int64_t i = 0; i < n * c; ++i) {
        ps->grad[static_cast<size_t>(i)] +=
            g * (q[static_cast<size_t>(i)] - p[static_cast<size_t>(i)]);
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor MseLoss(const Tensor& a, const Tensor& b) {
  DADER_CHECK(a.shape() == b.shape());
  auto out = MakeOpNode({1}, {a.impl(), b.impl()});
  const size_t n = a.vec().size();
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += d * d;
  }
  out->data[0] = static_cast<float>(acc / static_cast<double>(n));
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, n](const TensorImpl& self) {
      const float g = self.grad[0] * 2.0f / static_cast<float>(n);
      if (pa->requires_grad) pa->EnsureGrad();
      if (pb->requires_grad) pb->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        const float d = pa->data[i] - pb->data[i];
        if (pa->requires_grad) pa->grad[i] += g * d;
        if (pb->requires_grad) pb->grad[i] -= g * d;
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor BagOfTokensCrossEntropy(const Tensor& logits,
                               const std::vector<std::vector<int64_t>>& bags) {
  DADER_CHECK_EQ(logits.rank(), 2u);
  const int64_t b = logits.dim(0), v = logits.dim(1);
  DADER_CHECK_EQ(static_cast<size_t>(b), bags.size());
  std::vector<float> probs(logits.vec().size());
  SoftmaxForward(logits.data(), probs.data(), b, v);
  int64_t total = 0;
  double loss = 0.0;
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t tok : bags[static_cast<size_t>(i)]) {
      DADER_CHECK_GE(tok, 0);
      DADER_CHECK_LT(tok, v);
      loss -= std::log(std::max(probs[static_cast<size_t>(i * v + tok)], 1e-12f));
      ++total;
    }
  }
  auto out = internal::MakeOpNode({1}, {logits.impl()});
  out->data[0] = total == 0 ? 0.0f
                            : static_cast<float>(loss / static_cast<double>(total));
  if (out->requires_grad && total > 0) {
    std::shared_ptr<internal::TensorImpl> pl = logits.impl();
    out->backward_fn = [pl, probs = std::move(probs), bags, b, v,
                        total](const internal::TensorImpl& self) {
      pl->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(total);
      for (int64_t i = 0; i < b; ++i) {
        const auto& bag = bags[static_cast<size_t>(i)];
        if (bag.empty()) continue;
        float* dst = pl->grad.data() + i * v;
        const float* p = probs.data() + i * v;
        const float scale = g * static_cast<float>(bag.size());
        for (int64_t j = 0; j < v; ++j) dst[j] += scale * p[j];
        for (int64_t tok : bag) dst[tok] -= g;
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

}  // namespace dader::ops
