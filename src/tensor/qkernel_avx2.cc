// AVX2 int8 GEMM tier: u8 activations x s8 weights -> int32.
//
// Compiled with -mavx2 regardless of the global architecture flags
// (src/tensor/CMakeLists.txt); cpu_dispatch routes int8 calls here when the
// host has AVX2 but not AVX-512BW. Three kernels:
//
//   * Fast (acc16): B packed as [8 cols x 4 k] 32-byte groups;
//     `vpmaddubsw` forms u8*s8 pair products saturating in s16 (lane 2j and
//     2j+1 both belong to column j), then `vpmaddwd` against ones widens
//     and folds the two pair sums into one s32 per column. The s16 step
//     saturates when some |a0*w0 + a1*w1| > 32767 — the driver admits this
//     kernel only when max_activation * MaddubsPairBound(B) stays inside
//     s16 (a deterministic integer check), in which case the result is
//     bit-identical to the exact kernel.
//   * Exact: B packed as [8 cols x 2 k] 16-byte groups, sign-extended to
//     s16 at use (`vpmovsxbw`); activations broadcast as a zero-extended
//     (a0, a1) s16 pair. `vpmaddwd` multiplies s16 x s16 into s32 before
//     adding, so nothing can saturate (u8*s8 <= 255*127 fits s16 products'
//     s32 sums with room to spare).
//   * Direct: unpacked B for small problems; interleaves two consecutive B
//     rows with `vpunpcklbw` to reuse the exact kernel's madd form without
//     a packing pass.
//
// All three produce the same int32 bits (when the fast guard holds), so the
// int8 determinism contract is cross-tier and cross-thread-count — see
// cpu_dispatch.h.

#include "tensor/gemm_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>
#include <vector>

namespace dader::cpu::internal {

namespace {

// Sign-bit lane mask for _mm256_maskstore_epi32: lanes [0, count) active.
__m256i TailMask32(int64_t count) {
  alignas(32) int32_t lanes[8];
  for (int i = 0; i < 8; ++i) lanes[i] = i < count ? -1 : 0;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

thread_local std::vector<int8_t> t_bpack;

// Packs B[k,n] (row-major s8) into 32-byte groups of 8 columns x 4
// consecutive k, zero-padded in both directions; group (q, jb) starts at
// bpack[(q * nblocks + jb) * 32], byte jj*4 + kk holds B[4q+kk, 8jb+jj].
int8_t* PackQuads(int64_t n, int64_t k, const int8_t* b, int64_t* nblocks,
                  int64_t* nquads) {
  *nblocks = (n + 7) / 8;
  *nquads = (k + 3) / 4;
  t_bpack.assign(static_cast<size_t>(*nblocks * *nquads * 32), 0);
  int8_t* bp = t_bpack.data();
  for (int64_t p = 0; p < k; ++p) {
    const int64_t q = p / 4, kk = p % 4;
    const int8_t* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) {
      bp[((q * *nblocks + j / 8) * 32) + (j % 8) * 4 + kk] = brow[j];
    }
  }
  return bp;
}

// Same, 16-byte groups of 8 columns x 2 consecutive k (the exact kernel's
// layout); byte jj*2 + kk holds B[2p2+kk, 8jb+jj].
int8_t* PackPairs(int64_t n, int64_t k, const int8_t* b, int64_t* nblocks,
                  int64_t* npairs) {
  *nblocks = (n + 7) / 8;
  *npairs = (k + 1) / 2;
  t_bpack.assign(static_cast<size_t>(*nblocks * *npairs * 16), 0);
  int8_t* bp = t_bpack.data();
  for (int64_t p = 0; p < k; ++p) {
    const int64_t p2 = p / 2, kk = p % 2;
    const int8_t* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) {
      bp[((p2 * *nblocks + j / 8) * 16) + (j % 8) * 2 + kk] = brow[j];
    }
  }
  return bp;
}

constexpr int kRows = 6;  // row fan per column block (6 acc + b + a = 8 ymm)

void QGemmFastAvx2(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                   int64_t lda, const int8_t* b, int32_t* c) {
  int64_t nblocks = 0, nquads = 0;
  const int8_t* bp = PackQuads(n, k, b, &nblocks, &nquads);
  const __m256i ones = _mm256_set1_epi16(1);
  for (int64_t jb = 0; jb < nblocks; ++jb) {
    const int64_t j0 = jb * 8;
    const int64_t nr = n - j0 < 8 ? n - j0 : 8;
    const bool full = nr == 8;
    const __m256i mask = TailMask32(nr);
    const int8_t* bcol = bp + jb * 32;
    int64_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m256i acc[kRows];
      for (int r = 0; r < kRows; ++r) acc[r] = _mm256_setzero_si256();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bcol + q * nblocks * 32));
        for (int r = 0; r < kRows; ++r) {
          const __m256i av = _mm256_set1_epi32(
              *reinterpret_cast<const int32_t*>(a + (i + r) * lda + q * 4));
          acc[r] = _mm256_add_epi32(
              acc[r],
              _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
        }
      }
      for (int r = 0; r < kRows; ++r) {
        int32_t* crow = c + (i + r) * n + j0;
        if (full) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc[r]);
        } else {
          _mm256_maskstore_epi32(crow, mask, acc[r]);
        }
      }
    }
    for (; i < m; ++i) {
      __m256i acc = _mm256_setzero_si256();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bcol + q * nblocks * 32));
        const __m256i av = _mm256_set1_epi32(
            *reinterpret_cast<const int32_t*>(a + i * lda + q * 4));
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
      }
      int32_t* crow = c + i * n + j0;
      if (full) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc);
      } else {
        _mm256_maskstore_epi32(crow, mask, acc);
      }
    }
  }
}

void QGemmExactAvx2(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                    int64_t lda, const int8_t* b, int32_t* c) {
  int64_t nblocks = 0, npairs = 0;
  const int8_t* bp = PackPairs(n, k, b, &nblocks, &npairs);
  for (int64_t jb = 0; jb < nblocks; ++jb) {
    const int64_t j0 = jb * 8;
    const int64_t nr = n - j0 < 8 ? n - j0 : 8;
    const bool full = nr == 8;
    const __m256i mask = TailMask32(nr);
    const int8_t* bcol = bp + jb * 16;
    int64_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m256i acc[kRows];
      for (int r = 0; r < kRows; ++r) acc[r] = _mm256_setzero_si256();
      for (int64_t p2 = 0; p2 < npairs; ++p2) {
        const __m256i bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(bcol + p2 * nblocks * 16)));
        for (int r = 0; r < kRows; ++r) {
          const uint8_t* ap = a + (i + r) * lda + p2 * 2;
          const __m256i av = _mm256_set1_epi32(
              static_cast<int32_t>(ap[0]) |
              (static_cast<int32_t>(ap[1]) << 16));
          acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(av, bv));
        }
      }
      for (int r = 0; r < kRows; ++r) {
        int32_t* crow = c + (i + r) * n + j0;
        if (full) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc[r]);
        } else {
          _mm256_maskstore_epi32(crow, mask, acc[r]);
        }
      }
    }
    for (; i < m; ++i) {
      __m256i acc = _mm256_setzero_si256();
      for (int64_t p2 = 0; p2 < npairs; ++p2) {
        const __m256i bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(bcol + p2 * nblocks * 16)));
        const uint8_t* ap = a + i * lda + p2 * 2;
        const __m256i av =
            _mm256_set1_epi32(static_cast<int32_t>(ap[0]) |
                              (static_cast<int32_t>(ap[1]) << 16));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
      }
      int32_t* crow = c + i * n + j0;
      if (full) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc);
      } else {
        _mm256_maskstore_epi32(crow, mask, acc);
      }
    }
  }
}

// Unpacked small-problem kernel: streams B row pairs directly, interleaving
// them on the fly. Column chunks that don't fill 8 lanes fall back to
// scalar, as do the trailing columns of the very last B row (whose 8-byte
// load would otherwise run past the buffer).
void QGemmDirectAvx2(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                     int64_t lda, const int8_t* b, int32_t* c) {
  const int64_t nvec = n & ~int64_t{7};
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* arow = a + i * lda;
    int32_t* crow = c + i * n;
    for (int64_t j0 = 0; j0 < nvec; j0 += 8) {
      __m256i acc = _mm256_setzero_si256();
      for (int64_t p = 0; p < k; p += 2) {
        const __m128i b0 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(b + p * n + j0));
        const __m128i b1 =
            p + 1 < k ? _mm_loadl_epi64(
                            reinterpret_cast<const __m128i*>(b + (p + 1) * n +
                                                             j0))
                      : _mm_setzero_si128();
        const __m256i bv = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(b0, b1));
        // arow is zero-padded past k, so the second byte of a trailing odd
        // pair is 0 and contributes nothing.
        const __m256i av = _mm256_set1_epi32(
            static_cast<int32_t>(arow[p]) |
            (static_cast<int32_t>(p + 1 < lda ? arow[p + 1] : 0) << 16));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j0), acc);
    }
    for (int64_t j = nvec; j < n; ++j) {
      int32_t sum = 0;
      for (int64_t p = 0; p < k; ++p) {
        sum += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(b[p * n + j]);
      }
      crow[j] = sum;
    }
  }
}

// Break-even measured with DADER_CPU_ISA=avx2 (bench_gemm int8 section):
// below ~1-2 rows at the serving head shapes the packing pass costs more
// than it saves; in m*n*k products that lands near 16K.
const QGemmKernels kTable = {
    /*isa=*/Isa::kAvx2,
    /*exact=*/&QGemmExactAvx2,
    /*fast=*/&QGemmFastAvx2,
    /*fast_is_exact=*/false,
    /*direct=*/&QGemmDirectAvx2,
    /*direct_cutoff=*/16'384,
};

}  // namespace

const QGemmKernels* Avx2QKernels() { return &kTable; }

}  // namespace dader::cpu::internal

#else  // !__AVX2__

namespace dader::cpu::internal {
const QGemmKernels* Avx2QKernels() { return nullptr; }
}  // namespace dader::cpu::internal

#endif
