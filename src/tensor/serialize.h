// Persistence for named tensor collections (model checkpoints).
//
// Used by the MLM pre-trainer to cache pre-trained extractor weights so
// every bench sees the same "pre-trained language model", and by the
// quantized serving path to persist calibrated int8 layer state.
//
// On-disk versions: v2 files hold only fp32 tensors (shape + data per
// entry); v3 adds a per-entry dtype tag so int8 quantized-Linear state
// (weights + per-channel scales + activation quantizer) can ride in the
// same file. SaveTensorFile writes v2 whenever there are no quantized
// entries — a file without int8 payload is bit-identical to what the v2
// writer produced, so old readers keep working. Both versions end in a
// CRC-32 footer and are written via atomic temp-file-then-rename; a torn
// or bit-flipped file fails VerifyCrcFooter and the caller regenerates.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace dader {

/// \brief A named collection of fp32 tensors plus quantized Linear states.
struct TensorFile {
  std::map<std::string, Tensor> dense;
  std::map<std::string, std::shared_ptr<const quant::QuantizedLinear>> quant;
};

/// \brief Writes `file` to `path`; v2 when file.quant is empty, v3
/// otherwise. Derived quant fields (col_sum, pair_bound) are not stored —
/// LoadTensorFile recomputes them, so they can never disagree with the
/// weights.
Status SaveTensorFile(const std::string& path, const TensorFile& file);

/// \brief Reads a v2 or v3 tensor file.
Result<TensorFile> LoadTensorFile(const std::string& path);

/// \brief Writes name -> tensor pairs to `path` (magic-tagged binary
/// format). Equivalent to SaveTensorFile with no quantized entries.
Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors);

/// \brief Reads a tensor collection previously written by SaveTensors.
/// Loaded tensors do not require grad; copy into parameters as needed.
/// Fails on files carrying quantized entries — use LoadTensorFile there.
Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path);

}  // namespace dader
