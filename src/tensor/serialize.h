// Persistence for named tensor collections (model checkpoints).
//
// Used by the MLM pre-trainer to cache pre-trained extractor weights so
// every bench sees the same "pre-trained language model".

#pragma once

#include <map>
#include <string>

#include "tensor/tensor.h"
#include "util/status.h"

namespace dader {

/// \brief Writes name -> tensor pairs to `path` (magic-tagged binary format).
Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors);

/// \brief Reads a tensor collection previously written by SaveTensors.
/// Loaded tensors do not require grad; copy into parameters as needed.
Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path);

}  // namespace dader
