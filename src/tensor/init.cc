#include "tensor/init.h"

#include <cmath>

namespace dader {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform({fan_in, fan_out}, -limit, limit, rng,
                               /*requires_grad=*/true);
}

Tensor KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::RandomNormal({fan_in, fan_out}, stddev, rng,
                              /*requires_grad=*/true);
}

Tensor EmbeddingInit(int64_t vocab, int64_t dim, Rng* rng, float stddev) {
  return Tensor::RandomNormal({vocab, dim}, stddev, rng,
                              /*requires_grad=*/true);
}

}  // namespace dader
