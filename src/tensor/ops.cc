#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"

namespace dader::ops {

namespace {

using internal::MakeOpNode;
using internal::TensorImpl;
using ImplPtr = std::shared_ptr<TensorImpl>;

// How the second operand of a binary elementwise op lines up with the first.
enum class BroadcastKind {
  kSameShape,   // identical shapes
  kLastDim,     // b is {d}, broadcast across a's last dimension
  kScalar,      // b is {1}
};

BroadcastKind ClassifyBroadcast(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return BroadcastKind::kSameShape;
  if (b.rank() == 1 && b.numel() == 1) return BroadcastKind::kScalar;
  if (b.rank() == 1 && !a.shape().empty() &&
      a.shape().back() == b.dim(0)) {
    return BroadcastKind::kLastDim;
  }
  DADER_CHECK_MSG(false, ("incompatible shapes " + ShapeToString(a.shape()) +
                          " vs " + ShapeToString(b.shape()))
                             .c_str());
  __builtin_unreachable();
}

// Index of b's element aligned with a's flat index i.
inline size_t BIndex(BroadcastKind kind, size_t i, int64_t last_dim) {
  switch (kind) {
    case BroadcastKind::kSameShape:
      return i;
    case BroadcastKind::kLastDim:
      return i % static_cast<size_t>(last_dim);
    case BroadcastKind::kScalar:
      return 0;
  }
  return 0;
}

// Generic unary elementwise op: forward computes f(x), backward multiplies
// the output gradient by dfdx evaluated from (input value, output value).
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  auto out = MakeOpNode(a.shape(), {a.impl()});
  const size_t n = a.vec().size();
  const float* x = a.data();
  float* y = out->data.data();
  for (size_t i = 0; i < n; ++i) y[i] = fwd(x[i]);
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, bwd](const TensorImpl& self) {
      pa->EnsureGrad();
      const size_t n = self.data.size();
      for (size_t i = 0; i < n; ++i) {
        pa->grad[i] += self.grad[i] * bwd(pa->data[i], self.data[i]);
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = ClassifyBroadcast(a, b);
  const int64_t last = a.shape().empty() ? 1 : a.shape().back();
  auto out = MakeOpNode(a.shape(), {a.impl(), b.impl()});
  const size_t n = a.vec().size();
  for (size_t i = 0; i < n; ++i) {
    out->data[i] = a.data()[i] + b.data()[BIndex(kind, i, last)];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, kind, last](const TensorImpl& self) {
      const size_t n = self.data.size();
      if (pa->requires_grad) {
        pa->EnsureGrad();
        for (size_t i = 0; i < n; ++i) pa->grad[i] += self.grad[i];
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          pb->grad[BIndex(kind, i, last)] += self.grad[i];
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = ClassifyBroadcast(a, b);
  const int64_t last = a.shape().empty() ? 1 : a.shape().back();
  auto out = MakeOpNode(a.shape(), {a.impl(), b.impl()});
  const size_t n = a.vec().size();
  for (size_t i = 0; i < n; ++i) {
    out->data[i] = a.data()[i] - b.data()[BIndex(kind, i, last)];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, kind, last](const TensorImpl& self) {
      const size_t n = self.data.size();
      if (pa->requires_grad) {
        pa->EnsureGrad();
        for (size_t i = 0; i < n; ++i) pa->grad[i] += self.grad[i];
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          pb->grad[BIndex(kind, i, last)] -= self.grad[i];
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const BroadcastKind kind = ClassifyBroadcast(a, b);
  const int64_t last = a.shape().empty() ? 1 : a.shape().back();
  auto out = MakeOpNode(a.shape(), {a.impl(), b.impl()});
  const size_t n = a.vec().size();
  for (size_t i = 0; i < n; ++i) {
    out->data[i] = a.data()[i] * b.data()[BIndex(kind, i, last)];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, kind, last](const TensorImpl& self) {
      const size_t n = self.data.size();
      if (pa->requires_grad) {
        pa->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          pa->grad[i] += self.grad[i] * pb->data[BIndex(kind, i, last)];
        }
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        for (size_t i = 0; i < n; ++i) {
          pb->grad[BIndex(kind, i, last)] += self.grad[i] * pa->data[i];
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor AddScalar(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return x + c; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return x * c; },
      [c](float, float) { return c; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float alpha) {
  return UnaryOp(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * x; },
      [alpha](float x, float) { return x > 0.0f ? 1.0f : alpha; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Numerically stable in both tails.
        if (x >= 0.0f) return 1.0f / (1.0f + std::exp(-x));
        const float e = std::exp(x);
        return e / (1.0f + e);
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Sqrt(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::sqrt(std::max(x, eps)); },
      [](float, float y) { return 0.5f / y; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DADER_CHECK_EQ(a.rank(), 2u);
  DADER_CHECK_EQ(b.rank(), 2u);
  DADER_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  auto out = MakeOpNode({m, n}, {a.impl(), b.impl()});
  gemm::GemmNN(m, n, k, a.data(), b.data(), out->data.data());
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, m, k, n](const TensorImpl& self) {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        // dA[m,k] += dC[m,n] * B[k,n]^T
        gemm::GemmNT(m, k, n, self.grad.data(), pb->data.data(),
                     pa->grad.data());
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        // dB[k,n] += A[m,k]^T * dC[m,n]
        gemm::GemmTN(k, n, m, pa->data.data(), self.grad.data(),
                     pb->grad.data());
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  DADER_CHECK_EQ(a.rank(), 3u);
  DADER_CHECK_EQ(b.rank(), 3u);
  DADER_CHECK_EQ(a.dim(0), b.dim(0));
  DADER_CHECK_EQ(a.dim(2), b.dim(1));
  const int64_t bsz = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  auto out = MakeOpNode({bsz, m, n}, {a.impl(), b.impl()});
  gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), out->data.data());
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, bsz, m, k, n](const TensorImpl& self) {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        // dA[i] += dC[i] * B[i]^T
        gemm::BatchGemmNT(bsz, m, k, n, self.grad.data(), pb->data.data(),
                          pa->grad.data());
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        // dB[i] += A[i]^T * dC[i]
        gemm::BatchGemmTN(bsz, k, n, m, pa->data.data(), self.grad.data(),
                          pb->grad.data());
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor BatchMatMulNT(const Tensor& a, const Tensor& b) {
  DADER_CHECK_EQ(a.rank(), 3u);
  DADER_CHECK_EQ(b.rank(), 3u);
  DADER_CHECK_EQ(a.dim(0), b.dim(0));
  DADER_CHECK_EQ(a.dim(2), b.dim(2));
  const int64_t bsz = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  auto out = MakeOpNode({bsz, m, n}, {a.impl(), b.impl()});
  gemm::BatchGemmNT(bsz, m, n, k, a.data(), b.data(), out->data.data());
  if (out->requires_grad) {
    ImplPtr pa = a.impl(), pb = b.impl();
    out->backward_fn = [pa, pb, bsz, m, k, n](const TensorImpl& self) {
      if (pa->requires_grad) {
        pa->EnsureGrad();
        // dA[i][m,k] += dC[i][m,n] * B[i][n,k]
        gemm::BatchGemmNN(bsz, m, k, n, self.grad.data(), pb->data.data(),
                          pa->grad.data());
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        // dB[i][n,k] += dC[i][m,n]^T * A[i][m,k]
        gemm::BatchGemmTN(bsz, n, k, m, self.grad.data(), pa->data.data(),
                          pb->grad.data());
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor Reshape(const Tensor& a, Shape shape) {
  DADER_CHECK_EQ(NumElements(shape), a.numel());
  auto out = MakeOpNode(std::move(shape), {a.impl()});
  out->data = a.vec();
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa](const TensorImpl& self) {
      pa->EnsureGrad();
      for (size_t i = 0; i < self.grad.size(); ++i) pa->grad[i] += self.grad[i];
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor TransposeLast2(const Tensor& a) {
  DADER_CHECK(a.rank() == 2u || a.rank() == 3u);
  const int64_t bsz = a.rank() == 3 ? a.dim(0) : 1;
  const int64_t m = a.dim(a.rank() - 2), n = a.dim(a.rank() - 1);
  Shape out_shape = a.shape();
  std::swap(out_shape[a.rank() - 2], out_shape[a.rank() - 1]);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  for (int64_t b = 0; b < bsz; ++b) {
    const float* src = a.data() + b * m * n;
    float* dst = out->data.data() + b * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) dst[j * m + i] = src[i * n + j];
    }
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, bsz, m, n](const TensorImpl& self) {
      pa->EnsureGrad();
      for (int64_t b = 0; b < bsz; ++b) {
        const float* g = self.grad.data() + b * m * n;
        float* dst = pa->grad.data() + b * m * n;
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) dst[i * n + j] += g[j * m + i];
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

namespace {

// Row-major strides of a shape.
std::vector<int64_t> Strides(const Shape& s) {
  std::vector<int64_t> st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i) {
    st[i] = st[i + 1] * s[i + 1];
  }
  return st;
}

// out_flat_index(i) for each input flat index when axes ax0/ax1 are swapped.
std::vector<int64_t> SwapAxesMapping(const Shape& in_shape, int ax0, int ax1) {
  Shape out_shape = in_shape;
  std::swap(out_shape[ax0], out_shape[ax1]);
  const auto in_strides = Strides(in_shape);
  const auto out_strides = Strides(out_shape);
  const int64_t n = NumElements(in_shape);
  std::vector<int64_t> mapping(static_cast<size_t>(n));
  std::vector<int64_t> idx(in_shape.size(), 0);
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t out_flat = 0;
    for (size_t d = 0; d < in_shape.size(); ++d) {
      size_t od = d;
      if (static_cast<int>(d) == ax0) od = ax1;
      else if (static_cast<int>(d) == ax1) od = ax0;
      out_flat += idx[d] * out_strides[od];
    }
    mapping[static_cast<size_t>(flat)] = out_flat;
    // Increment the multi-index (row-major odometer).
    for (int d = static_cast<int>(in_shape.size()) - 1; d >= 0; --d) {
      if (++idx[d] < in_shape[d]) break;
      idx[d] = 0;
    }
  }
  return mapping;
}

}  // namespace

Tensor SwapAxes(const Tensor& a, int ax0, int ax1) {
  DADER_CHECK_LT(static_cast<size_t>(ax0), a.rank());
  DADER_CHECK_LT(static_cast<size_t>(ax1), a.rank());
  if (ax0 == ax1) return Reshape(a, a.shape());
  Shape out_shape = a.shape();
  std::swap(out_shape[ax0], out_shape[ax1]);
  auto mapping = SwapAxesMapping(a.shape(), ax0, ax1);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  for (size_t i = 0; i < mapping.size(); ++i) {
    out->data[static_cast<size_t>(mapping[i])] = a.data()[i];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, mapping = std::move(mapping)](const TensorImpl& self) {
      pa->EnsureGrad();
      for (size_t i = 0; i < mapping.size(); ++i) {
        pa->grad[i] += self.grad[static_cast<size_t>(mapping[i])];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

namespace {

// outer/inner element counts around `axis` for shape `s`.
void AxisSpans(const Shape& s, int axis, int64_t* outer, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= s[i];
  for (size_t i = axis + 1; i < s.size(); ++i) *inner *= s[i];
}

}  // namespace

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  DADER_CHECK(!parts.empty());
  const size_t rank = parts[0].rank();
  DADER_CHECK_LT(static_cast<size_t>(axis), rank);
  Shape out_shape = parts[0].shape();
  int64_t axis_total = 0;
  for (const auto& p : parts) {
    DADER_CHECK_EQ(p.rank(), rank);
    for (size_t d = 0; d < rank; ++d) {
      if (static_cast<int>(d) != axis) DADER_CHECK_EQ(p.dim(d), out_shape[d]);
    }
    axis_total += p.dim(axis);
  }
  out_shape[axis] = axis_total;

  std::vector<ImplPtr> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.impl());
  auto out = MakeOpNode(out_shape, parents);

  int64_t outer, inner;
  AxisSpans(out_shape, axis, &outer, &inner);
  int64_t offset = 0;  // running offset along the concat axis
  std::vector<int64_t> part_axis(parts.size());
  std::vector<int64_t> part_offset(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    part_axis[p] = parts[p].dim(axis);
    part_offset[p] = offset;
    const int64_t chunk = part_axis[p] * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(parts[p].data() + o * chunk, parts[p].data() + (o + 1) * chunk,
                out->data.data() + (o * axis_total + offset) * inner);
    }
    offset += part_axis[p];
  }
  if (out->requires_grad) {
    out->backward_fn = [parents, part_axis, part_offset, outer, inner,
                        axis_total](const TensorImpl& self) {
      for (size_t p = 0; p < parents.size(); ++p) {
        if (!parents[p]->requires_grad) continue;
        parents[p]->EnsureGrad();
        const int64_t chunk = part_axis[p] * inner;
        for (int64_t o = 0; o < outer; ++o) {
          const float* g =
              self.grad.data() + (o * axis_total + part_offset[p]) * inner;
          float* dst = parents[p]->grad.data() + o * chunk;
          for (int64_t i = 0; i < chunk; ++i) dst[i] += g[i];
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor SelectAxis(const Tensor& a, int axis, int64_t index) {
  DADER_CHECK_LT(static_cast<size_t>(axis), a.rank());
  DADER_CHECK_GE(index, 0);
  DADER_CHECK_LT(index, a.dim(axis));
  Shape out_shape;
  for (size_t d = 0; d < a.rank(); ++d) {
    if (static_cast<int>(d) != axis) out_shape.push_back(a.dim(d));
  }
  if (out_shape.empty()) out_shape.push_back(1);
  int64_t outer, inner;
  AxisSpans(a.shape(), axis, &outer, &inner);
  const int64_t axis_dim = a.dim(axis);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  for (int64_t o = 0; o < outer; ++o) {
    std::copy(a.data() + (o * axis_dim + index) * inner,
              a.data() + (o * axis_dim + index + 1) * inner,
              out->data.data() + o * inner);
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, outer, inner, axis_dim,
                        index](const TensorImpl& self) {
      pa->EnsureGrad();
      for (int64_t o = 0; o < outer; ++o) {
        const float* g = self.grad.data() + o * inner;
        float* dst = pa->grad.data() + (o * axis_dim + index) * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += g[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor SliceAxis0(const Tensor& a, int64_t start, int64_t len) {
  DADER_CHECK_GE(start, 0);
  DADER_CHECK_GE(len, 0);
  DADER_CHECK_LE(start + len, a.dim(0));
  Shape out_shape = a.shape();
  out_shape[0] = len;
  int64_t inner = 1;
  for (size_t d = 1; d < a.rank(); ++d) inner *= a.dim(d);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  std::copy(a.data() + start * inner, a.data() + (start + len) * inner,
            out->data.data());
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, start, inner](const TensorImpl& self) {
      pa->EnsureGrad();
      float* dst = pa->grad.data() + start * inner;
      for (size_t i = 0; i < self.grad.size(); ++i) dst[i] += self.grad[i];
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor Stack0(const std::vector<Tensor>& parts) {
  DADER_CHECK(!parts.empty());
  const Shape& elem_shape = parts[0].shape();
  const int64_t elem_numel = parts[0].numel();
  std::vector<ImplPtr> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) {
    DADER_CHECK(p.shape() == elem_shape);
    parents.push_back(p.impl());
  }
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), elem_shape.begin(), elem_shape.end());
  auto out = MakeOpNode(std::move(out_shape), parents);
  for (size_t p = 0; p < parts.size(); ++p) {
    std::copy(parts[p].data(), parts[p].data() + elem_numel,
              out->data.data() + static_cast<int64_t>(p) * elem_numel);
  }
  if (out->requires_grad) {
    out->backward_fn = [parents, elem_numel](const TensorImpl& self) {
      for (size_t p = 0; p < parents.size(); ++p) {
        if (!parents[p]->requires_grad) continue;
        parents[p]->EnsureGrad();
        const float* g = self.grad.data() + static_cast<int64_t>(p) * elem_numel;
        for (int64_t i = 0; i < elem_numel; ++i) parents[p]->grad[i] += g[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor SumAll(const Tensor& a) {
  auto out = MakeOpNode({1}, {a.impl()});
  double acc = 0.0;
  for (float v : a.vec()) acc += v;
  out->data[0] = static_cast<float>(acc);
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa](const TensorImpl& self) {
      pa->EnsureGrad();
      const float g = self.grad[0];
      for (auto& gv : pa->grad) gv += g;
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor MeanAll(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(SumAll(a), inv);
}

Tensor MeanAxis(const Tensor& a, int axis) {
  DADER_CHECK_LT(static_cast<size_t>(axis), a.rank());
  Shape out_shape;
  for (size_t d = 0; d < a.rank(); ++d) {
    if (static_cast<int>(d) != axis) out_shape.push_back(a.dim(d));
  }
  if (out_shape.empty()) out_shape.push_back(1);
  int64_t outer, inner;
  AxisSpans(a.shape(), axis, &outer, &inner);
  const int64_t axis_dim = a.dim(axis);
  const float inv = 1.0f / static_cast<float>(axis_dim);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t k = 0; k < axis_dim; ++k) {
      const float* src = a.data() + (o * axis_dim + k) * inner;
      float* dst = out->data.data() + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i] * inv;
    }
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, outer, inner, axis_dim, inv](const TensorImpl& self) {
      pa->EnsureGrad();
      for (int64_t o = 0; o < outer; ++o) {
        const float* g = self.grad.data() + o * inner;
        for (int64_t k = 0; k < axis_dim; ++k) {
          float* dst = pa->grad.data() + (o * axis_dim + k) * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += g[i] * inv;
        }
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor MaxLastAxis(const Tensor& a) {
  DADER_CHECK_GE(a.rank(), 1u);
  const int64_t d = a.shape().back();
  DADER_CHECK_GT(d, 0);
  const int64_t rows = a.numel() / d;
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  if (out_shape.empty()) out_shape.push_back(1);
  auto out = MakeOpNode(std::move(out_shape), {a.impl()});
  std::vector<int64_t> argmax(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = a.data() + r * d;
    int64_t best = 0;
    for (int64_t j = 1; j < d; ++j) {
      if (row[j] > row[best]) best = j;
    }
    argmax[static_cast<size_t>(r)] = best;
    out->data[static_cast<size_t>(r)] = row[best];
  }
  if (out->requires_grad) {
    ImplPtr pa = a.impl();
    out->backward_fn = [pa, argmax = std::move(argmax),
                        d](const TensorImpl& self) {
      pa->EnsureGrad();
      for (size_t r = 0; r < argmax.size(); ++r) {
        pa->grad[r * static_cast<size_t>(d) +
                 static_cast<size_t>(argmax[r])] += self.grad[r];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

}  // namespace dader::ops
