#include "tensor/gemm.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tensor/cpu_dispatch.h"
#include "tensor/gemm_kernels.h"
#include "util/thread_pool.h"

namespace dader::gemm {

namespace {

enum class Trans { kN, kT };

// Per-thread packing scratch, sized lazily to the active tier's block
// capacity (tiers differ in geometry, so the size is not a constant here).
thread_local std::vector<float> t_apack;
thread_local std::vector<float> t_bpack;

// ---------------------------------------------------------------------------
// Packing. Panels are laid out depth-major: element (p, r) of an A panel at
// apack[p*mr + r], element (p, j) of a B panel at bpack[p*nr + j], so the
// microkernel reads both buffers strictly contiguously. Short panels are
// zero-padded; padded lanes multiply into accumulator lanes that are never
// stored back. Panel heights/widths come from the active tier's table.
// ---------------------------------------------------------------------------

// Packs the mc x kc block of A at (row i0, depth p0) into mr-tall panels.
// lda is the row stride of the stored matrix; for Trans::kT the matrix is
// stored k x m and element (i, p) lives at a[p*lda + i].
void PackA(Trans trans, int mr, const float* a, int64_t lda, int64_t i0,
           int64_t p0, int64_t mc, int64_t kc, float* apack) {
  for (int64_t ib = 0; ib < mc; ib += mr) {
    const int64_t rows = std::min<int64_t>(mr, mc - ib);
    float* panel = apack + ib * kc;
    if (trans == Trans::kN) {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * mr;
        const float* src = a + (i0 + ib) * lda + (p0 + p);
        for (int64_t r = 0; r < rows; ++r) dst[r] = src[r * lda];
        for (int64_t r = rows; r < mr; ++r) dst[r] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * mr;
        const float* src = a + (p0 + p) * lda + (i0 + ib);
        for (int64_t r = 0; r < rows; ++r) dst[r] = src[r];
        for (int64_t r = rows; r < mr; ++r) dst[r] = 0.0f;
      }
    }
  }
}

// Packs the kc x nc block of B at (depth p0, column j0) into nr-wide
// panels. For Trans::kT the matrix is stored n x k and element (p, j)
// lives at b[j*ldb + p] — this pack is where the NT variant's
// transposition happens, so the microkernel never does strided loads.
void PackB(Trans trans, int nr, const float* b, int64_t ldb, int64_t p0,
           int64_t j0, int64_t kc, int64_t nc, float* bpack) {
  for (int64_t jb = 0; jb < nc; jb += nr) {
    const int64_t cols = std::min<int64_t>(nr, nc - jb);
    float* panel = bpack + jb * kc;
    if (trans == Trans::kN) {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * nr;
        const float* src = b + (p0 + p) * ldb + (j0 + jb);
        for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
        for (int64_t j = cols; j < nr; ++j) dst[j] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * nr;
        const float* src = b + (j0 + jb) * ldb + (p0 + p);
        for (int64_t j = 0; j < cols; ++j) dst[j] = src[j * ldb];
        for (int64_t j = cols; j < nr; ++j) dst[j] = 0.0f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked driver for one rectangular cell [i_begin, i_end) x [j_begin,
// j_end) of C. Thread tasks call this on disjoint cells whose boundaries
// are mr/nr-aligned, which keeps tile geometry — and with it the per-element
// accumulation sequence — identical to the serial full-matrix walk.
//
// Edge tiles run the SAME tier microkernel on an mr x nr stack scratch
// (zero-padded, valid C region copied in and out) instead of a separate
// scalar tail kernel: one microkernel per tier means every element of C
// sees one code path, so full/tail tiling cannot introduce cross-partition
// bit differences.
// ---------------------------------------------------------------------------

void BlockedCell(const cpu::GemmKernels& kk, Trans ta, Trans tb,
                 int64_t i_begin, int64_t i_end, int64_t j_begin,
                 int64_t j_end, int64_t k, const float* a, int64_t lda,
                 const float* b, int64_t ldb, float* c, int64_t ldc) {
  const int mr = kk.mr, nr = kk.nr;
  t_apack.resize(static_cast<size_t>(kk.mc) * kk.kc);
  t_bpack.resize(static_cast<size_t>(kk.kc) * kk.nc);
  float* apack = t_apack.data();
  float* bpack = t_bpack.data();
  float tail[cpu::kMaxMr * cpu::kMaxNr];
  for (int64_t jc = j_begin; jc < j_end; jc += kk.nc) {
    const int64_t nc = std::min(kk.nc, j_end - jc);
    for (int64_t pc = 0; pc < k; pc += kk.kc) {
      const int64_t kc = std::min(kk.kc, k - pc);
      PackB(tb, nr, b, ldb, pc, jc, kc, nc, bpack);
      for (int64_t ic = i_begin; ic < i_end; ic += kk.mc) {
        const int64_t mc = std::min(kk.mc, i_end - ic);
        PackA(ta, mr, a, lda, ic, pc, mc, kc, apack);
        for (int64_t ib = 0; ib < mc; ib += mr) {
          const int64_t mrr = std::min<int64_t>(mr, mc - ib);
          for (int64_t jb = 0; jb < nc; jb += nr) {
            const int64_t nrr = std::min<int64_t>(nr, nc - jb);
            float* ctile = c + (ic + ib) * ldc + jc + jb;
            if (mrr == mr && nrr == nr) {
              kk.microkernel(kc, apack + ib * kc, bpack + jb * kc, ctile,
                             ldc);
            } else {
              for (int64_t r = 0; r < mr * nr; ++r) tail[r] = 0.0f;
              for (int64_t r = 0; r < mrr; ++r)
                for (int64_t j = 0; j < nrr; ++j)
                  tail[r * nr + j] = ctile[r * ldc + j];
              kk.microkernel(kc, apack + ib * kc, bpack + jb * kc, tail, nr);
              for (int64_t r = 0; r < mrr; ++r)
                for (int64_t j = 0; j < nrr; ++j)
                  ctile[r * ldc + j] = tail[r * nr + j];
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Instrumentation: wall duration per public call bucketed by problem size
// (`tensor.gemm.ms`), plus per-dispatch-path and per-ISA-tier call counters
// (`tensor.gemm.kernel.*`); see docs/OBSERVABILITY.md.
// ---------------------------------------------------------------------------

const std::vector<double>& GemmLatencyBoundsMs() {
  static const std::vector<double> kBounds = {0.01, 0.025, 0.05, 0.1, 0.25,
                                              0.5,  1,     2.5,  5,   10,
                                              25,   50,    100,  250};
  return kBounds;
}

obs::Histogram* HistogramForFlops(double flops) {
  static constexpr const char* kHelp =
      "GEMM call duration, by FLOP-count shape class";
  auto make = [](const char* cls) {
    return obs::MetricsRegistry::Default().GetHistogram(
        obs::LabeledName("tensor.gemm.ms", "class", cls), kHelp, "ms",
        GemmLatencyBoundsMs());
  };
  static obs::Histogram* tiny = make("tiny");      // < 2 MFLOP
  static obs::Histogram* small = make("small");    // < 32 MFLOP
  static obs::Histogram* medium = make("medium");  // < 256 MFLOP
  static obs::Histogram* large = make("large");
  if (flops < 2e6) return tiny;
  if (flops < 3.2e7) return small;
  if (flops < 2.56e8) return medium;
  return large;
}

class ScopedGemmTimer {
 public:
  explicit ScopedGemmTimer(double flops)
      : histogram_(HistogramForFlops(flops)), start_(Clock::now()) {}
  ~ScopedGemmTimer() {
    histogram_->Observe(
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  obs::Histogram* histogram_;
  Clock::time_point start_;
};

// Which execution tier a call resolved to. kDirectPath = the unpacked
// small-GEMM kernel, kBlocked = serial packed kernel, kBlockedMt = packed
// kernel fanned out over the pool.
enum class Path { kDirect, kBlocked, kBlockedMt };

void CountCall(Path path, cpu::Isa isa) {
  auto& reg = obs::MetricsRegistry::Default();
  static constexpr const char* kPathHelp =
      "GEMM calls by dispatch path (direct small-kernel vs blocked vs "
      "multi-threaded blocked)";
  static constexpr const char* kIsaHelp =
      "GEMM calls by the SIMD ISA tier that executed them";
  static obs::Counter* direct = reg.GetCounter(
      obs::LabeledName("tensor.gemm.kernel.calls", "path", "direct"),
      kPathHelp, "calls");
  static obs::Counter* blocked = reg.GetCounter(
      obs::LabeledName("tensor.gemm.kernel.calls", "path", "blocked"),
      kPathHelp, "calls");
  static obs::Counter* blocked_mt = reg.GetCounter(
      obs::LabeledName("tensor.gemm.kernel.calls", "path", "blocked_mt"),
      kPathHelp, "calls");
  static obs::Counter* isa_calls[] = {
      reg.GetCounter(obs::LabeledName("tensor.gemm.kernel.isa_calls", "isa",
                                      "portable"),
                     kIsaHelp, "calls"),
      reg.GetCounter(
          obs::LabeledName("tensor.gemm.kernel.isa_calls", "isa", "avx2"),
          kIsaHelp, "calls"),
      reg.GetCounter(
          obs::LabeledName("tensor.gemm.kernel.isa_calls", "isa", "avx512"),
          kIsaHelp, "calls"),
  };
  switch (path) {
    case Path::kDirect:
      direct->Increment();
      break;
    case Path::kBlocked:
      blocked->Increment();
      break;
    case Path::kBlockedMt:
      blocked_mt->Increment();
      break;
  }
  isa_calls[static_cast<int>(isa)]->Increment();
}

// ---------------------------------------------------------------------------
// Dispatch. Tier choice depends only on the problem shape, the options, and
// the (process-stable) active ISA — never on runtime load — so a given call
// site is deterministic.
// ---------------------------------------------------------------------------

int64_t DirectCutoff(const cpu::GemmKernels& kk, Trans ta, Trans tb) {
  if (ta == Trans::kT) return kk.direct_cutoff_tn;
  return tb == Trans::kT ? kk.direct_cutoff_nt : kk.direct_cutoff_nn;
}

void RunDirect(const cpu::GemmKernels& kk, Trans ta, Trans tb, int64_t m,
               int64_t n, int64_t k, const float* a, const float* b,
               float* c) {
  if (ta == Trans::kN && tb == Trans::kN) {
    kk.small_nn(m, n, k, a, b, c);
  } else if (ta == Trans::kN) {
    kk.small_nt(m, n, k, a, b, c);
  } else {
    kk.small_tn(m, n, k, a, b, c);
  }
}

// True when the call should take the direct (unpacked) small-kernel path:
// below the tier's measured packing break-even, or a skinny NN/TN product
// (a single served pair is m == 1) that streams B exactly once either way.
bool WantsDirect(const cpu::GemmKernels& kk, Trans ta, Trans tb, int64_t m,
                 double flops, const GemmOptions& options) {
  if (options.force_path == GemmForcePath::kDirect) return true;
  if (options.force_path == GemmForcePath::kBlocked) return false;
  if (flops < static_cast<double>(DirectCutoff(kk, ta, tb))) return true;
  return tb == Trans::kN && m < 4;
}

// Fan-out width for a problem of `flops` total work whose natural partition
// count is `max_partitions` (register-tile-aligned cells, or batch
// elements). Returns 1 — stay serial — unless the problem clears the engage
// threshold AND every task would still own at least min_flops_per_task of
// work AND there are physical cores to run the tasks on. The decision
// depends only on the shape, the options, and machine constants — never on
// runtime load — so a given call site stays deterministic.
int64_t PlanTasks(double flops, int64_t max_partitions,
                  const ThreadPool* pool, const GemmOptions& options) {
  if (flops < static_cast<double>(options.parallel_min_flops) ||
      pool->num_threads() <= 1 || ThreadPool::InWorkerThread()) {
    return 1;
  }
  int64_t tasks = std::min<int64_t>(
      static_cast<int64_t>(pool->num_threads()), max_partitions);
  if (options.respect_hardware_concurrency) {
    // hardware_concurrency() == 0 means "unknown"; trust the pool then.
    // Cached once: glibc answers via a /sys read, which costs tens of
    // microseconds — real money against a sub-millisecond multiply.
    static const auto hw =
        static_cast<int64_t>(std::thread::hardware_concurrency());
    if (hw > 0) tasks = std::min(tasks, hw);
  }
  if (options.min_flops_per_task > 0) {
    tasks = std::min(
        tasks, std::max<int64_t>(
                   1, static_cast<int64_t>(
                          flops / static_cast<double>(
                                      options.min_flops_per_task))));
  }
  return tasks;
}

// 2D (M x N) task grid for the parallel blocked path. Cell boundaries are
// mr/nr-aligned (bit-identity across partitionings, see BlockedCell), and
// the grid is over-decomposed up to kGrainFactor cells per planned task so
// ParallelChunks' dynamic pickup can absorb uneven scheduling — the old
// one-row-panel-strip-per-task split gave every thread exactly one huge
// chunk, so a single preempted worker serialized the whole call.
struct Grid {
  int64_t gm, gn;          // cells along M / N
  int64_t rows_per_cell;   // mr-aligned
  int64_t cols_per_cell;   // nr-aligned
};

constexpr int64_t kGrainFactor = 4;

Grid PlanGrid(const cpu::GemmKernels& kk, int64_t m, int64_t n,
              int64_t tasks) {
  // Floors: a cell narrower than 2 register tiles per side re-packs panels
  // for trivial work. Prefer splitting M (cells share packed B traffic
  // poorly, but B panels are streamed once per row block anyway); split N
  // only once M alone cannot feed the requested grain.
  const int64_t max_gm = std::max<int64_t>(1, m / (2 * kk.mr));
  const int64_t max_gn = std::max<int64_t>(1, n / (2 * kk.nr));
  const int64_t target = std::min(tasks * kGrainFactor, max_gm * max_gn);
  int64_t gm = std::min(max_gm, target);
  int64_t gn = std::min(max_gn, (target + gm - 1) / gm);
  Grid grid;
  grid.rows_per_cell =
      ((m + gm - 1) / gm + kk.mr - 1) / kk.mr * kk.mr;
  grid.cols_per_cell =
      ((n + gn - 1) / gn + kk.nr - 1) / kk.nr * kk.nr;
  grid.gm = (m + grid.rows_per_cell - 1) / grid.rows_per_cell;
  grid.gn = (n + grid.cols_per_cell - 1) / grid.cols_per_cell;
  return grid;
}

void Run(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, const float* a,
         int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
         const GemmOptions& options) {
  if (m == 0 || n == 0 || k == 0) return;
  const cpu::GemmKernels& kk = cpu::ActiveKernels();
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  ScopedGemmTimer timer(flops);
  if (WantsDirect(kk, ta, tb, m, flops, options)) {
    CountCall(Path::kDirect, kk.isa);
    RunDirect(kk, ta, tb, m, n, k, a, b, c);
    return;
  }
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : ThreadPool::Global();
  const int64_t max_cells =
      ((m + kk.mr - 1) / kk.mr) * ((n + kk.nr - 1) / kk.nr);
  const int64_t tasks = PlanTasks(flops, max_cells, pool, options);
  if (tasks <= 1) {
    CountCall(Path::kBlocked, kk.isa);
    BlockedCell(kk, ta, tb, 0, m, 0, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  CountCall(Path::kBlockedMt, kk.isa);
  const Grid grid = PlanGrid(kk, m, n, tasks);
  ParallelChunks(pool, static_cast<size_t>(grid.gm * grid.gn),
                 [&](size_t cell) {
                   const int64_t ci = static_cast<int64_t>(cell) / grid.gn;
                   const int64_t cj = static_cast<int64_t>(cell) % grid.gn;
                   const int64_t i0 = ci * grid.rows_per_cell;
                   const int64_t i1 = std::min(m, i0 + grid.rows_per_cell);
                   const int64_t j0 = cj * grid.cols_per_cell;
                   const int64_t j1 = std::min(n, j0 + grid.cols_per_cell);
                   BlockedCell(kk, ta, tb, i0, i1, j0, j1, k, a, lda, b, ldb,
                               c, ldc);
                 });
}

void RunBatch(Trans ta, Trans tb, int64_t bsz, int64_t m, int64_t n,
              int64_t k, const float* a, int64_t lda, const float* b,
              int64_t ldb, float* c, int64_t ldc,
              const GemmOptions& options) {
  if (bsz == 0 || m == 0 || n == 0 || k == 0) return;
  const cpu::GemmKernels& kk = cpu::ActiveKernels();
  const double elem_flops = 2.0 * static_cast<double>(m) * n * k;
  const double total_flops = elem_flops * static_cast<double>(bsz);
  ScopedGemmTimer timer(total_flops);
  const int64_t a_step = m * k, b_step = k * n, c_step = m * n;
  const bool direct = WantsDirect(kk, ta, tb, m, elem_flops, options);
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : ThreadPool::Global();
  const int64_t tasks = PlanTasks(total_flops, bsz, pool, options);
  CountCall(tasks > 1 ? Path::kBlockedMt
                      : (direct ? Path::kDirect : Path::kBlocked),
            kk.isa);
  // Batch-strided execution: the tier/path decision, the pool plan, and
  // (on the direct path) all packing setup happen ONCE per call; each task
  // then strides a contiguous run of batch elements through the chosen
  // kernel. Before this existed, attention-shaped batches paid full
  // blocked-GEMM setup (scratch sizing + panel packing) per 64x16x64
  // element — the attn_ctx 1.7x plateau in BENCH_gemm.json.
  auto run_span = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* ai = a + i * a_step;
      const float* bi = b + i * b_step;
      float* ci = c + i * c_step;
      if (direct) {
        RunDirect(kk, ta, tb, m, n, k, ai, bi, ci);
      } else {
        BlockedCell(kk, ta, tb, 0, m, 0, n, k, ai, lda, bi, ldb, ci, ldc);
      }
    }
  };
  if (tasks <= 1) {
    run_span(0, bsz);
    return;
  }
  // Over-decompose across the batch like the 2D grid does across cells,
  // so a straggler element does not pin the whole call to one task.
  const int64_t chunk_target = std::min(bsz, tasks * kGrainFactor);
  const int64_t per_task = (bsz + chunk_target - 1) / chunk_target;
  const int64_t chunks = (bsz + per_task - 1) / per_task;
  ParallelChunks(pool, static_cast<size_t>(chunks), [&](size_t chunk) {
    const int64_t begin = static_cast<int64_t>(chunk) * per_task;
    run_span(begin, std::min(bsz, begin + per_task));
  });
}

}  // namespace

void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kN, Trans::kN, m, n, k, a, /*lda=*/k, b, /*ldb=*/n, c,
      /*ldc=*/n, options);
}

void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kN, Trans::kT, m, n, k, a, /*lda=*/k, b, /*ldb=*/k, c,
      /*ldc=*/n, options);
}

void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kT, Trans::kN, m, n, k, a, /*lda=*/m, b, /*ldb=*/n, c,
      /*ldc=*/n, options);
}

void BatchGemmNN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kN, Trans::kN, bsz, m, n, k, a, /*lda=*/k, b, /*ldb=*/n, c,
           /*ldc=*/n, options);
}

void BatchGemmNT(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kN, Trans::kT, bsz, m, n, k, a, /*lda=*/k, b, /*ldb=*/k, c,
           /*ldc=*/n, options);
}

void BatchGemmTN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kT, Trans::kN, bsz, m, n, k, a, /*lda=*/m, b, /*ldb=*/n, c,
           /*ldc=*/n, options);
}

// The naive oracle is the portable tier's small-kernel set (the seed repo's
// original scalar loops, moved verbatim to microkernel_portable.cc): one
// copy of the code serves as correctness baseline, benchmark baseline, and
// portable direct path alike.
void NaiveGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  cpu::internal::PortableKernels()->small_nn(m, n, k, a, b, c);
}

void NaiveGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  cpu::internal::PortableKernels()->small_nt(m, n, k, a, b, c);
}

void NaiveGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  cpu::internal::PortableKernels()->small_tn(m, n, k, a, b, c);
}

}  // namespace dader::gemm
