#include "tensor/gemm.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dader::gemm {

namespace {

// ---------------------------------------------------------------------------
// Tuning constants (measured on AVX-512 hardware with gcc 12 -O3
// -march=native; see docs/PERF.md for the methodology and the numbers).
// ---------------------------------------------------------------------------

// Register tile: the microkernel keeps an MR x NR float accumulator block
// live in vector registers. 8 x 32 = 16 zmm (or spills gracefully to ymm
// pairs) and gives 16 independent FMA chains — enough to cover FMA latency.
constexpr int kMR = 8;
constexpr int kNR = 32;

// Cache blocks: an MC x KC panel of A (64 KiB) stays L2-resident while a
// KC x NC panel of B (512 KiB) streams through; both divide evenly by the
// register tile so only the matrix edges take the tail path.
constexpr int64_t kMC = 64;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 512;
static_assert(kMC % kMR == 0 && kNC % kNR == 0);

// Below this many FLOPs (2*m*n*k) the packing traffic costs more than the
// register tiling saves; the call runs the naive kernel instead.
constexpr int64_t kNaiveFlopsCutoff = 32'768;

// The NT variant gets a far lower bar: its naive form is per-element dot
// products, which gcc cannot vectorize (float reductions need -ffast-math),
// so the packed kernel wins even on attention-scores-sized problems
// (32x32x16 measures ~10x). Only trivially tiny NT calls stay naive.
constexpr int64_t kNaiveFlopsCutoffNT = 2'048;

// Per-thread packing scratch, sized once to the (fixed) block capacity.
thread_local std::vector<float> t_apack;
thread_local std::vector<float> t_bpack;

enum class Trans { kN, kT };

// ---------------------------------------------------------------------------
// Packing. Panels are laid out depth-major: element (p, r) of an A panel at
// apack[p*MR + r], element (p, j) of a B panel at bpack[p*NR + j], so the
// microkernel reads both buffers strictly contiguously. Short panels are
// zero-padded; padded lanes multiply into accumulator lanes that are never
// stored back.
// ---------------------------------------------------------------------------

// Packs the mc x kc block of A at (row i0, depth p0) into MR-tall panels.
// lda is the row stride of the stored matrix; for Trans::kT the matrix is
// stored k x m and element (i, p) lives at a[p*lda + i].
void PackA(Trans trans, const float* a, int64_t lda, int64_t i0, int64_t p0,
           int64_t mc, int64_t kc, float* apack) {
  for (int64_t ib = 0; ib < mc; ib += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, mc - ib);
    float* panel = apack + ib * kc;
    if (trans == Trans::kN) {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kMR;
        const float* src = a + (i0 + ib) * lda + (p0 + p);
        for (int64_t r = 0; r < mr; ++r) dst[r] = src[r * lda];
        for (int64_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kMR;
        const float* src = a + (p0 + p) * lda + (i0 + ib);
        for (int64_t r = 0; r < mr; ++r) dst[r] = src[r];
        for (int64_t r = mr; r < kMR; ++r) dst[r] = 0.0f;
      }
    }
  }
}

// Packs the kc x nc block of B at (depth p0, column j0) into NR-wide
// panels. For Trans::kT the matrix is stored n x k and element (p, j)
// lives at b[j*ldb + p] — this pack is where the NT variant's
// transposition happens, so the microkernel never does strided loads.
void PackB(Trans trans, const float* b, int64_t ldb, int64_t p0, int64_t j0,
           int64_t kc, int64_t nc, float* bpack) {
  for (int64_t jb = 0; jb < nc; jb += kNR) {
    const int64_t nr = std::min<int64_t>(kNR, nc - jb);
    float* panel = bpack + jb * kc;
    if (trans == Trans::kN) {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kNR;
        const float* src = b + (p0 + p) * ldb + (j0 + jb);
        for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
        for (int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p) {
        float* dst = panel + p * kNR;
        const float* src = b + (j0 + jb) * ldb + (p0 + p);
        for (int64_t j = 0; j < nr; ++j) dst[j] = src[j * ldb];
        for (int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Microkernel: C_tile += Apanel * Bpanel over one KC depth block, with the
// accumulator tile held in registers for the whole depth. The accumulators
// initialize from C, and depth advances strictly ascending, so every output
// element sees the exact same serial accumulation order no matter how the
// surrounding blocks or row panels are partitioned — this is the bit-level
// determinism contract of the layer.
// ---------------------------------------------------------------------------

inline void MicroKernel(int64_t kc, const float* apack, const float* bpack,
                        float* c, int64_t ldc) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r)
    for (int j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  for (int64_t p = 0; p < kc; ++p) {
    const float* bp = bpack + p * kNR;
    const float* ap = apack + p * kMR;
    for (int r = 0; r < kMR; ++r) {
      const float av = ap[r];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int r = 0; r < kMR; ++r)
    for (int j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
}

// Edge tile (mr < MR and/or nr < NR): same structure and accumulation
// order, runtime bounds.
inline void MicroKernelTail(int64_t kc, int64_t mr, int64_t nr,
                            const float* apack, const float* bpack, float* c,
                            int64_t ldc) {
  float acc[kMR][kNR];
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
  for (int64_t p = 0; p < kc; ++p) {
    const float* bp = bpack + p * kNR;
    const float* ap = apack + p * kMR;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = ap[r];
      for (int64_t j = 0; j < nr; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r)
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
}

// ---------------------------------------------------------------------------
// Blocked driver for one contiguous row range [i_begin, i_end) of C.
// Thread tasks call this on disjoint MR-aligned ranges.
// ---------------------------------------------------------------------------

void BlockedRange(Trans ta, Trans tb, int64_t i_begin, int64_t i_end,
                  int64_t n, int64_t k, const float* a, int64_t lda,
                  const float* b, int64_t ldb, float* c, int64_t ldc) {
  t_apack.resize(static_cast<size_t>(kMC) * kKC);
  t_bpack.resize(static_cast<size_t>(kKC) * kNC);
  float* apack = t_apack.data();
  float* bpack = t_bpack.data();
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      PackB(tb, b, ldb, pc, jc, kc, nc, bpack);
      for (int64_t ic = i_begin; ic < i_end; ic += kMC) {
        const int64_t mc = std::min(kMC, i_end - ic);
        PackA(ta, a, lda, ic, pc, mc, kc, apack);
        for (int64_t ib = 0; ib < mc; ib += kMR) {
          const int64_t mr = std::min<int64_t>(kMR, mc - ib);
          for (int64_t jb = 0; jb < nc; jb += kNR) {
            const int64_t nr = std::min<int64_t>(kNR, nc - jb);
            float* ctile = c + (ic + ib) * ldc + jc + jb;
            if (mr == kMR && nr == kNR) {
              MicroKernel(kc, apack + ib * kc, bpack + jb * kc, ctile, ldc);
            } else {
              MicroKernelTail(kc, mr, nr, apack + ib * kc, bpack + jb * kc,
                              ctile, ldc);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Naive kernels (seed implementations, also the small-problem fast path).
// ---------------------------------------------------------------------------

// C[m,n] += A[m,k] * B[k,n]; i-k-j loop order for streaming access.
void NaiveNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,n] += A[m,k] * B[n,k]^T: per-element dot products.
void NaiveNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// C[m,n] += A[k,m]^T * B[k,n]: rank-1 updates over the depth.
void NaiveTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void RunNaive(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k,
              const float* a, const float* b, float* c) {
  if (ta == Trans::kN && tb == Trans::kN) {
    NaiveNN(m, n, k, a, b, c);
  } else if (ta == Trans::kN) {
    NaiveNT(m, n, k, a, b, c);
  } else {
    NaiveTN(m, n, k, a, b, c);
  }
}

// ---------------------------------------------------------------------------
// Instrumentation: wall duration per public call, bucketed by problem size
// (see `tensor.gemm.ms` in docs/OBSERVABILITY.md).
// ---------------------------------------------------------------------------

const std::vector<double>& GemmLatencyBoundsMs() {
  static const std::vector<double> kBounds = {0.01, 0.025, 0.05, 0.1, 0.25,
                                              0.5,  1,     2.5,  5,   10,
                                              25,   50,    100,  250};
  return kBounds;
}

obs::Histogram* HistogramForFlops(double flops) {
  static constexpr const char* kHelp =
      "GEMM call duration, by FLOP-count shape class";
  auto make = [](const char* cls) {
    return obs::MetricsRegistry::Default().GetHistogram(
        obs::LabeledName("tensor.gemm.ms", "class", cls), kHelp, "ms",
        GemmLatencyBoundsMs());
  };
  static obs::Histogram* tiny = make("tiny");      // < 2 MFLOP
  static obs::Histogram* small = make("small");    // < 32 MFLOP
  static obs::Histogram* medium = make("medium");  // < 256 MFLOP
  static obs::Histogram* large = make("large");
  if (flops < 2e6) return tiny;
  if (flops < 3.2e7) return small;
  if (flops < 2.56e8) return medium;
  return large;
}

class ScopedGemmTimer {
 public:
  explicit ScopedGemmTimer(double flops)
      : histogram_(HistogramForFlops(flops)), start_(Clock::now()) {}
  ~ScopedGemmTimer() {
    histogram_->Observe(
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  obs::Histogram* histogram_;
  Clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Dispatch: naive below the cutoff, blocked above it, row-panel parallel
// above the options threshold. Path choice depends only on the problem
// shape and options — never on runtime state — so a given call site is
// deterministic.
// ---------------------------------------------------------------------------

// Fan-out width for a problem of `flops` total work whose natural partition
// count is `max_partitions` (row panels, or batch elements). Returns 1 —
// stay serial — unless the problem clears the engage threshold AND every
// task would still own at least min_flops_per_task of work AND there are
// physical cores to run the tasks on. The decision depends only on the
// shape, the options, and machine constants — never on runtime load — so a
// given call site stays deterministic.
int64_t PlanTasks(double flops, int64_t max_partitions,
                  const ThreadPool* pool, const GemmOptions& options) {
  if (flops < static_cast<double>(options.parallel_min_flops) ||
      pool->num_threads() <= 1 || ThreadPool::InWorkerThread()) {
    return 1;
  }
  int64_t tasks = std::min<int64_t>(
      static_cast<int64_t>(pool->num_threads()), max_partitions);
  if (options.respect_hardware_concurrency) {
    // hardware_concurrency() == 0 means "unknown"; trust the pool then.
    // Cached once: glibc answers via a /sys read, which costs tens of
    // microseconds — real money against a sub-millisecond multiply.
    static const auto hw =
        static_cast<int64_t>(std::thread::hardware_concurrency());
    if (hw > 0) tasks = std::min(tasks, hw);
  }
  if (options.min_flops_per_task > 0) {
    tasks = std::min(
        tasks, std::max<int64_t>(
                   1, static_cast<int64_t>(
                          flops / static_cast<double>(
                                      options.min_flops_per_task))));
  }
  return tasks;
}

void Run(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, const float* a,
         int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc,
         const GemmOptions& options) {
  if (m == 0 || n == 0 || k == 0) return;
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  ScopedGemmTimer timer(flops);
  const int64_t cutoff =
      tb == Trans::kT ? kNaiveFlopsCutoffNT : kNaiveFlopsCutoff;
  if (flops < cutoff || (ta == Trans::kN && tb == Trans::kN && m < 4)) {
    // Tiny problems, and skinny NN products (a single served pair is
    // m == 1), stream B exactly once in the naive kernel — packing it
    // first would double the memory traffic.
    RunNaive(ta, tb, m, n, k, a, b, c);
    return;
  }
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : ThreadPool::Global();
  const int64_t tasks = PlanTasks(flops, (m + kMR - 1) / kMR, pool, options);
  if (tasks <= 1) {
    BlockedRange(ta, tb, 0, m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  // MR-aligned row panels: tile boundaries then fall in the same places in
  // every partition, which keeps the full-tile/tail-tile split — and with
  // it the bit pattern of the result — identical across thread counts.
  const int64_t rows_per_task =
      ((m + tasks - 1) / tasks + kMR - 1) / kMR * kMR;
  const int64_t chunks = (m + rows_per_task - 1) / rows_per_task;
  ParallelChunks(pool, static_cast<size_t>(chunks), [&](size_t chunk) {
    const int64_t i0 = static_cast<int64_t>(chunk) * rows_per_task;
    const int64_t i1 = std::min(m, i0 + rows_per_task);
    BlockedRange(ta, tb, i0, i1, n, k, a, lda, b, ldb, c, ldc);
  });
}

void RunBatch(Trans ta, Trans tb, int64_t bsz, int64_t m, int64_t n,
              int64_t k, const float* a, int64_t lda, const float* b,
              int64_t ldb, float* c, int64_t ldc,
              const GemmOptions& options) {
  if (bsz == 0 || m == 0 || n == 0 || k == 0) return;
  const double elem_flops = 2.0 * static_cast<double>(m) * n * k;
  ScopedGemmTimer timer(elem_flops * static_cast<double>(bsz));
  const int64_t elem_cutoff =
      tb == Trans::kT ? kNaiveFlopsCutoffNT : kNaiveFlopsCutoff;
  const int64_t a_step = m * k, b_step = k * n, c_step = m * n;
  // One batch element, on whichever thread owns it.
  auto run_element = [&](int64_t i) {
    const float* ai = a + i * a_step;
    const float* bi = b + i * b_step;
    float* ci = c + i * c_step;
    if (elem_flops < elem_cutoff ||
        (ta == Trans::kN && tb == Trans::kN && m < 4)) {
      RunNaive(ta, tb, m, n, k, ai, bi, ci);
    } else {
      BlockedRange(ta, tb, 0, m, n, k, ai, lda, bi, ldb, ci, ldc);
    }
  };
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : ThreadPool::Global();
  const int64_t tasks =
      PlanTasks(elem_flops * static_cast<double>(bsz), bsz, pool, options);
  if (tasks <= 1) {
    for (int64_t i = 0; i < bsz; ++i) run_element(i);
    return;
  }
  const int64_t per_task = (bsz + tasks - 1) / tasks;
  const int64_t chunks = (bsz + per_task - 1) / per_task;
  ParallelChunks(pool, static_cast<size_t>(chunks), [&](size_t chunk) {
    const int64_t begin = static_cast<int64_t>(chunk) * per_task;
    const int64_t end = std::min(bsz, begin + per_task);
    for (int64_t i = begin; i < end; ++i) run_element(i);
  });
}

}  // namespace

void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kN, Trans::kN, m, n, k, a, /*lda=*/k, b, /*ldb=*/n, c,
      /*ldc=*/n, options);
}

void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kN, Trans::kT, m, n, k, a, /*lda=*/k, b, /*ldb=*/k, c,
      /*ldc=*/n, options);
}

void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, const GemmOptions& options) {
  Run(Trans::kT, Trans::kN, m, n, k, a, /*lda=*/m, b, /*ldb=*/n, c,
      /*ldc=*/n, options);
}

void BatchGemmNN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kN, Trans::kN, bsz, m, n, k, a, /*lda=*/k, b, /*ldb=*/n, c,
           /*ldc=*/n, options);
}

void BatchGemmNT(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kN, Trans::kT, bsz, m, n, k, a, /*lda=*/k, b, /*ldb=*/k, c,
           /*ldc=*/n, options);
}

void BatchGemmTN(int64_t bsz, int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c, const GemmOptions& options) {
  RunBatch(Trans::kT, Trans::kN, bsz, m, n, k, a, /*lda=*/m, b, /*ldb=*/n, c,
           /*ldc=*/n, options);
}

void NaiveGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  NaiveNN(m, n, k, a, b, c);
}

void NaiveGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  NaiveNT(m, n, k, a, b, c);
}

void NaiveGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  NaiveTN(m, n, k, a, b, c);
}

}  // namespace dader::gemm
