#include "tensor/da_losses.h"

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace dader::ops {

namespace {

using internal::MakeOpNode;
using internal::TensorImpl;
using ImplPtr = std::shared_ptr<TensorImpl>;

// Squared euclidean distance between row i of a and row j of b.
inline float SqDist(const float* a, const float* b, int64_t d) {
  float acc = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float diff = a[k] - b[k];
    acc += diff * diff;
  }
  return acc;
}

// Median of pairwise squared distances across the pooled sample; the classic
// bandwidth heuristic. Falls back to 1 when all points coincide.
float MedianSquaredDistance(const Tensor& xs, const Tensor& xt) {
  const int64_t d = xs.dim(1);
  std::vector<const float*> rows;
  for (int64_t i = 0; i < xs.dim(0); ++i) rows.push_back(xs.data() + i * d);
  for (int64_t i = 0; i < xt.dim(0); ++i) rows.push_back(xt.data() + i * d);
  std::vector<float> dists;
  dists.reserve(rows.size() * (rows.size() - 1) / 2);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      dists.push_back(SqDist(rows[i], rows[j], d));
    }
  }
  if (dists.empty()) return 1.0f;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const float med = dists[dists.size() / 2];
  return med > 1e-12f ? med : 1.0f;
}

std::vector<float> ResolveBandwidths(const Tensor& xs, const Tensor& xt,
                                     std::vector<float> bandwidths) {
  if (!bandwidths.empty()) return bandwidths;
  const float med2 = MedianSquaredDistance(xs, xt);
  const float base = std::sqrt(med2);
  return {0.5f * base, 0.7071f * base, base, 1.4142f * base, 2.0f * base};
}

// Multi-bandwidth RBF kernel value and its "weight" sum_b exp(.)/sigma_b^2
// (the factor multiplying (y - x) in the gradient).
inline void KernelAndWeight(float sqdist, const std::vector<float>& sigmas,
                            float* k, float* w) {
  *k = 0.0f;
  *w = 0.0f;
  for (float s : sigmas) {
    const float s2 = s * s;
    const float e = std::exp(-sqdist / (2.0f * s2));
    *k += e;
    *w += e / s2;
  }
}

struct MmdComputation {
  float value = 0.0f;
  // Gradients of the loss w.r.t. xs and xt rows (flattened).
  std::vector<float> grad_s;
  std::vector<float> grad_t;
};

MmdComputation ComputeMmd(const Tensor& xs, const Tensor& xt,
                          const std::vector<float>& sigmas, bool need_grad) {
  const int64_t n = xs.dim(0), m = xt.dim(0), d = xs.dim(1);
  MmdComputation out;
  if (need_grad) {
    out.grad_s.assign(static_cast<size_t>(n * d), 0.0f);
    out.grad_t.assign(static_cast<size_t>(m * d), 0.0f);
  }
  double value = 0.0;
  const float css = 1.0f / static_cast<float>(n * n);
  const float ctt = 1.0f / static_cast<float>(m * m);
  const float cst = 2.0f / static_cast<float>(n * m);

  auto accumulate_pair = [&](const float* x, const float* y, float* gx,
                             float* gy, float coeff) {
    float k, w;
    KernelAndWeight(SqDist(x, y, d), sigmas, &k, &w);
    value += static_cast<double>(coeff) * k;
    if (!need_grad) return;
    // d k(x,y)/dx = w * (y - x); symmetric for y.
    const float cw = coeff * w;
    for (int64_t t = 0; t < d; ++t) {
      const float diff = y[t] - x[t];
      if (gx != nullptr) gx[t] += cw * diff;
      if (gy != nullptr) gy[t] -= cw * diff;
    }
  };

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) {
        value += css;  // k(x,x) = num_bandwidths... (see below)
        continue;
      }
      accumulate_pair(xs.data() + i * d, xs.data() + j * d,
                      need_grad ? out.grad_s.data() + i * d : nullptr,
                      need_grad ? out.grad_s.data() + j * d : nullptr, css);
    }
  }
  // Fix the diagonal contribution: k(x,x) = num_bandwidths, not 1.
  value += static_cast<double>(css) * n * (static_cast<double>(sigmas.size()) - 1.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      if (i == j) {
        value += ctt;
        continue;
      }
      accumulate_pair(xt.data() + i * d, xt.data() + j * d,
                      need_grad ? out.grad_t.data() + i * d : nullptr,
                      need_grad ? out.grad_t.data() + j * d : nullptr, ctt);
    }
  }
  value += static_cast<double>(ctt) * m * (static_cast<double>(sigmas.size()) - 1.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      accumulate_pair(xs.data() + i * d, xt.data() + j * d,
                      need_grad ? out.grad_s.data() + i * d : nullptr,
                      need_grad ? out.grad_t.data() + j * d : nullptr, -cst);
    }
  }
  out.value = static_cast<float>(value);
  return out;
}

}  // namespace

Tensor MmdLoss(const Tensor& xs, const Tensor& xt,
               std::vector<float> bandwidths) {
  DADER_CHECK_EQ(xs.rank(), 2u);
  DADER_CHECK_EQ(xt.rank(), 2u);
  DADER_CHECK_EQ(xs.dim(1), xt.dim(1));
  DADER_CHECK_GT(xs.dim(0), 0);
  DADER_CHECK_GT(xt.dim(0), 0);
  const auto sigmas = ResolveBandwidths(xs, xt, std::move(bandwidths));

  auto out = MakeOpNode({1}, {xs.impl(), xt.impl()});
  const bool need_grad = out->requires_grad;
  MmdComputation comp = ComputeMmd(xs, xt, sigmas, need_grad);
  out->data[0] = comp.value;
  if (need_grad) {
    ImplPtr ps = xs.impl(), pt = xt.impl();
    out->backward_fn = [ps, pt, gs = std::move(comp.grad_s),
                        gt = std::move(comp.grad_t)](const TensorImpl& self) {
      const float g = self.grad[0];
      if (ps->requires_grad) {
        ps->EnsureGrad();
        for (size_t i = 0; i < gs.size(); ++i) ps->grad[i] += g * gs[i];
      }
      if (pt->requires_grad) {
        pt->EnsureGrad();
        for (size_t i = 0; i < gt.size(); ++i) pt->grad[i] += g * gt[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

float MmdValue(const Tensor& xs, const Tensor& xt,
               std::vector<float> bandwidths) {
  DADER_CHECK_EQ(xs.rank(), 2u);
  DADER_CHECK_EQ(xt.rank(), 2u);
  DADER_CHECK_EQ(xs.dim(1), xt.dim(1));
  const auto sigmas = ResolveBandwidths(xs, xt, std::move(bandwidths));
  return ComputeMmd(xs, xt, sigmas, /*need_grad=*/false).value;
}

Tensor CoralLoss(const Tensor& xs, const Tensor& xt) {
  DADER_CHECK_EQ(xs.rank(), 2u);
  DADER_CHECK_EQ(xt.rank(), 2u);
  DADER_CHECK_EQ(xs.dim(1), xt.dim(1));
  const int64_t n = xs.dim(0), m = xt.dim(0), d = xs.dim(1);
  DADER_CHECK_GT(n, 0);
  DADER_CHECK_GT(m, 0);

  // Centered copies of both feature matrices.
  auto center = [d](const Tensor& x, int64_t rows) {
    std::vector<float> centered(x.vec());
    std::vector<float> mean(static_cast<size_t>(d), 0.0f);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < d; ++j) mean[static_cast<size_t>(j)] += x.data()[i * d + j];
    }
    for (auto& v : mean) v /= static_cast<float>(rows);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        centered[static_cast<size_t>(i * d + j)] -= mean[static_cast<size_t>(j)];
      }
    }
    return centered;
  };
  const std::vector<float> cs = center(xs, n);
  const std::vector<float> ct = center(xt, m);
  const float norm_s = n > 1 ? 1.0f / static_cast<float>(n - 1) : 1.0f;
  const float norm_t = m > 1 ? 1.0f / static_cast<float>(m - 1) : 1.0f;

  // D = C_S - C_T, accumulated directly (d x d).
  std::vector<float> D(static_cast<size_t>(d * d), 0.0f);
  auto accumulate_cov = [&D, d](const std::vector<float>& c, int64_t rows,
                                float norm, float sign) {
    for (int64_t i = 0; i < rows; ++i) {
      const float* row = c.data() + i * d;
      for (int64_t a = 0; a < d; ++a) {
        const float va = row[a] * norm * sign;
        float* drow = D.data() + a * d;
        for (int64_t b = 0; b < d; ++b) drow[b] += va * row[b];
      }
    }
  };
  accumulate_cov(cs, n, norm_s, 1.0f);
  accumulate_cov(ct, m, norm_t, -1.0f);

  double fro2 = 0.0;
  for (float v : D) fro2 += static_cast<double>(v) * v;
  const float inv4d2 = 1.0f / (4.0f * static_cast<float>(d) * static_cast<float>(d));

  auto out = MakeOpNode({1}, {xs.impl(), xt.impl()});
  out->data[0] = static_cast<float>(fro2) * inv4d2;
  if (out->requires_grad) {
    ImplPtr ps = xs.impl(), pt = xt.impl();
    // With G = dL/dC = sign * D / (2d^2) and C = X_c^T X_c / (n-1),
    // dL/dX_c = X_c (G + G^T) / (n-1) = X_c * D * (4 * inv4d2 * norm * sign)
    // because D is symmetric. Centering projects the gradient back:
    // subtract its column means.
    auto grad_for = [d, inv4d2](const std::vector<float>& c, int64_t rows,
                                float norm, float sign,
                                const std::vector<float>& D) {
      std::vector<float> g(static_cast<size_t>(rows * d), 0.0f);
      const float coef = sign * 4.0f * inv4d2 * norm;
      for (int64_t i = 0; i < rows; ++i) {
        const float* crow = c.data() + i * d;
        float* grow = g.data() + i * d;
        for (int64_t a = 0; a < d; ++a) {
          const float va = crow[a] * coef;
          if (va == 0.0f) continue;
          const float* drow = D.data() + a * d;
          for (int64_t b = 0; b < d; ++b) grow[b] += va * drow[b];
        }
      }
      // Subtract column means (gradient of the centering map).
      std::vector<float> mean(static_cast<size_t>(d), 0.0f);
      for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < d; ++j) mean[static_cast<size_t>(j)] += g[i * d + j];
      }
      for (auto& v : mean) v /= static_cast<float>(rows);
      for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < d; ++j) g[i * d + j] -= mean[static_cast<size_t>(j)];
      }
      return g;
    };
    std::vector<float> gs = grad_for(cs, n, norm_s, 1.0f, D);
    std::vector<float> gt = grad_for(ct, m, norm_t, -1.0f, D);
    out->backward_fn = [ps, pt, gs = std::move(gs),
                        gt = std::move(gt)](const TensorImpl& self) {
      const float g = self.grad[0];
      if (ps->requires_grad) {
        ps->EnsureGrad();
        for (size_t i = 0; i < gs.size(); ++i) ps->grad[i] += g * gs[i];
      }
      if (pt->requires_grad) {
        pt->EnsureGrad();
        for (size_t i = 0; i < gt.size(); ++i) pt->grad[i] += g * gt[i];
      }
    };
  }
  return Tensor::Wrap(std::move(out));
}

Tensor CmdLoss(const Tensor& xs, const Tensor& xt, int max_moment) {
  DADER_CHECK_EQ(xs.rank(), 2u);
  DADER_CHECK_EQ(xt.rank(), 2u);
  DADER_CHECK_EQ(xs.dim(1), xt.dim(1));
  DADER_CHECK_GE(max_moment, 1);

  auto l2 = [](const Tensor& v) {  // ||v||_2 as a scalar node
    return Sqrt(SumAll(Square(v)));
  };
  Tensor mean_s = MeanAxis(xs, 0);  // [d]
  Tensor mean_t = MeanAxis(xt, 0);
  Tensor loss = l2(Sub(mean_s, mean_t));

  Tensor cs = Sub(xs, mean_s);  // centered, broadcast over rows
  Tensor ct = Sub(xt, mean_t);
  Tensor pow_s = cs;
  Tensor pow_t = ct;
  for (int k = 2; k <= max_moment; ++k) {
    pow_s = Mul(pow_s, cs);
    pow_t = Mul(pow_t, ct);
    Tensor ck_s = MeanAxis(pow_s, 0);
    Tensor ck_t = MeanAxis(pow_t, 0);
    loss = Add(loss, l2(Sub(ck_s, ck_t)));
  }
  return loss;
}

}  // namespace dader::ops
