// Runtime CPU-capability dispatch for the GEMM kernel layer.
//
// The blocked GEMM in gemm.cc used to rely on gcc auto-vectorizing one
// portable 8x32 register tile under `-march=native` — which pins the binary
// to the build host's ISA and leaves nothing to select at runtime. This
// layer replaces that with explicit SIMD-intrinsic microkernels compiled
// into dedicated translation units with per-file ISA flags
// (`-mavx512f` / `-mavx2 -mfma`, see src/tensor/CMakeLists.txt), selected
// at runtime through a function-pointer table:
//
//   * `Isa` names the three tiers: kPortable (plain C++, any CPU),
//     kAvx2 (AVX2 + FMA), kAvx512 (AVX-512F).
//   * Detection probes the host once via `__builtin_cpu_supports` (cpuid
//     under the hood); non-x86 builds compile the probe away and always
//     report the portable tier.
//   * `DADER_CPU_ISA=portable|avx2|avx512` overrides the probe — for
//     testing each tier on capable hosts, and for pinning a fleet to a
//     common tier so heterogeneous machines produce identical bits.
//     Requests the host cannot run are clamped down to the best supported
//     tier (with a one-time warning), never trusted blindly.
//   * `GemmKernels` is the per-tier table: microkernel geometry
//     (MR x NR register tile, MC/KC/NC cache blocks), the packed
//     microkernel, the direct (unpacked) small-GEMM kernels, and the
//     measured direct-vs-blocked break-even cutoffs gemm.cc dispatches on.
//
// Determinism contract (see docs/PERF.md): within one tier, results are
// bit-identical across thread counts and run-to-run. Across tiers, results
// may differ in the last ulps — the tiers contract multiplies and adds into
// FMA differently and reduce dot products in different orders — which is
// why the tier choice is process-stable (cached on first use) and
// overridable, never per-call adaptive.

#pragma once

#include <cstdint>

namespace dader::cpu {

/// \brief ISA tiers, ordered worst to best; detection picks the highest
/// tier the host supports that was also compiled in.
enum class Isa : int { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// \brief "portable", "avx2", "avx512" — stable names used by the
/// `DADER_CPU_ISA` override, BENCH_gemm.json, and the
/// `tensor.gemm.kernel.isa_calls` counter labels.
const char* IsaName(Isa isa);

/// \brief True when the running CPU can execute `isa` (cpuid probe;
/// kPortable is always true).
bool HostSupports(Isa isa);

/// \brief True when the kernel TU for `isa` was built with the matching
/// compiler flags (a non-x86 or flag-stripped build still links, it just
/// registers no SIMD tiers).
bool CompiledWith(Isa isa);

/// \brief Highest tier that is both compiled in and host-supported.
Isa BestSupported();

/// \brief The tier every GEMM call dispatches through. Resolution order:
/// ForceIsa() override, else `DADER_CPU_ISA` env override (clamped to
/// BestSupported), else BestSupported. Cached after the first call except
/// for ForceIsa, which takes effect immediately.
Isa ActiveIsa();

/// \brief Test hook: pin ActiveIsa() to `isa` (clamped to BestSupported —
/// forcing a tier the host cannot run would SIGILL). Thread-safe, but
/// intended for test setup, not concurrent flipping mid-GEMM.
void ForceIsa(Isa isa);

/// \brief Clears the ForceIsa override; ActiveIsa() re-resolves from the
/// environment/probe.
void ClearForcedIsa();

/// \brief Per-tier kernel table. One immutable instance per compiled tier;
/// gemm.cc reads geometry for packing/blocking and calls the function
/// pointers on the hot path.
struct GemmKernels {
  Isa isa;

  // Register-tile geometry. Packing lays A out in mr-tall and B in nr-wide
  // depth-major panels, so these drive the pack routines as well as the
  // microkernel. Bounded by kMaxMr/kMaxNr (the driver's tail scratch).
  int mr;
  int nr;

  // Cache blocks; mc % mr == 0 and nc % nr == 0 (checked at registration).
  int64_t mc;
  int64_t kc;
  int64_t nc;

  // C_tile(mr x nr, row stride ldc) += Apanel * Bpanel over one kc-deep
  // block. apack is mr-tall depth-major (element (p, r) at apack[p*mr+r]),
  // bpack nr-wide depth-major. Accumulators stay in registers for the whole
  // depth; p advances strictly ascending (the determinism contract).
  void (*microkernel)(int64_t kc, const float* apack, const float* bpack,
                      float* c, int64_t ldc);

  // Direct small-GEMM kernels: no packing, operands row-major and fully
  // packed (lda=k or m, ldb=n or k, ldc=n — the only layout the public
  // entry points produce). These are the small-problem tier: below the
  // blocked break-even they skip panel packing entirely, and the batched
  // path strides them across a whole batch per dispatch.
  void (*small_nn)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);
  void (*small_nt)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);
  void (*small_tn)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);

  // Measured direct-vs-blocked break-even, in FLOPs (2*m*n*k): below the
  // cutoff the direct kernel wins (packing amortizes nothing), above it
  // the blocked path wins. Per variant because the direct NT kernel (dot
  // products) behaves very differently from NN/TN (row streaming). See
  // docs/PERF.md "Dispatch tiers" for the measurement methodology.
  int64_t direct_cutoff_nn;
  int64_t direct_cutoff_nt;
  int64_t direct_cutoff_tn;
};

// Upper bounds on any tier's register tile; the blocked driver's tail
// scratch is sized to these and registration enforces them.
inline constexpr int kMaxMr = 8;
inline constexpr int kMaxNr = 32;

/// \brief Table for `isa`, falling back to the portable tier when `isa`
/// was not compiled in or the host cannot run it.
const GemmKernels& KernelsFor(Isa isa);

/// \brief KernelsFor(ActiveIsa()) — what the GEMM hot path uses.
const GemmKernels& ActiveKernels();

}  // namespace dader::cpu
