// Runtime CPU-capability dispatch for the GEMM kernel layer.
//
// The blocked GEMM in gemm.cc used to rely on gcc auto-vectorizing one
// portable 8x32 register tile under `-march=native` — which pins the binary
// to the build host's ISA and leaves nothing to select at runtime. This
// layer replaces that with explicit SIMD-intrinsic microkernels compiled
// into dedicated translation units with per-file ISA flags
// (`-mavx512f` / `-mavx2 -mfma`, see src/tensor/CMakeLists.txt), selected
// at runtime through a function-pointer table:
//
//   * `Isa` names the three tiers: kPortable (plain C++, any CPU),
//     kAvx2 (AVX2 + FMA), kAvx512 (AVX-512F).
//   * Detection probes the host once via `__builtin_cpu_supports` (cpuid
//     under the hood); non-x86 builds compile the probe away and always
//     report the portable tier.
//   * `DADER_CPU_ISA=portable|avx2|avx512` overrides the probe — for
//     testing each tier on capable hosts, and for pinning a fleet to a
//     common tier so heterogeneous machines produce identical bits.
//     Requests the host cannot run are clamped down to the best supported
//     tier (with a one-time warning), never trusted blindly.
//   * `GemmKernels` is the per-tier table: microkernel geometry
//     (MR x NR register tile, MC/KC/NC cache blocks), the packed
//     microkernel, the direct (unpacked) small-GEMM kernels, and the
//     measured direct-vs-blocked break-even cutoffs gemm.cc dispatches on.
//
// Determinism contract (see docs/PERF.md): within one tier, results are
// bit-identical across thread counts and run-to-run. Across tiers, results
// may differ in the last ulps — the tiers contract multiplies and adds into
// FMA differently and reduce dot products in different orders — which is
// why the tier choice is process-stable (cached on first use) and
// overridable, never per-call adaptive.

#pragma once

#include <cstdint>

namespace dader::cpu {

/// \brief ISA tiers, ordered worst to best; detection picks the highest
/// tier the host supports that was also compiled in.
enum class Isa : int { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// \brief "portable", "avx2", "avx512" — stable names used by the
/// `DADER_CPU_ISA` override, BENCH_gemm.json, and the
/// `tensor.gemm.kernel.isa_calls` counter labels.
const char* IsaName(Isa isa);

/// \brief True when the running CPU can execute `isa` (cpuid probe;
/// kPortable is always true).
bool HostSupports(Isa isa);

/// \brief True when the kernel TU for `isa` was built with the matching
/// compiler flags (a non-x86 or flag-stripped build still links, it just
/// registers no SIMD tiers).
bool CompiledWith(Isa isa);

/// \brief Highest tier that is both compiled in and host-supported.
Isa BestSupported();

/// \brief The tier every GEMM call dispatches through. Resolution order:
/// ForceIsa() override, else `DADER_CPU_ISA` env override (clamped to
/// BestSupported), else BestSupported. Cached after the first call except
/// for ForceIsa, which takes effect immediately.
Isa ActiveIsa();

/// \brief Test hook: pin ActiveIsa() to `isa` (clamped to BestSupported —
/// forcing a tier the host cannot run would SIGILL). Thread-safe, but
/// intended for test setup, not concurrent flipping mid-GEMM.
void ForceIsa(Isa isa);

/// \brief Clears the ForceIsa override; ActiveIsa() re-resolves from the
/// environment/probe.
void ClearForcedIsa();

/// \brief Per-tier kernel table. One immutable instance per compiled tier;
/// gemm.cc reads geometry for packing/blocking and calls the function
/// pointers on the hot path.
struct GemmKernels {
  Isa isa;

  // Register-tile geometry. Packing lays A out in mr-tall and B in nr-wide
  // depth-major panels, so these drive the pack routines as well as the
  // microkernel. Bounded by kMaxMr/kMaxNr (the driver's tail scratch).
  int mr;
  int nr;

  // Cache blocks; mc % mr == 0 and nc % nr == 0 (checked at registration).
  int64_t mc;
  int64_t kc;
  int64_t nc;

  // C_tile(mr x nr, row stride ldc) += Apanel * Bpanel over one kc-deep
  // block. apack is mr-tall depth-major (element (p, r) at apack[p*mr+r]),
  // bpack nr-wide depth-major. Accumulators stay in registers for the whole
  // depth; p advances strictly ascending (the determinism contract).
  void (*microkernel)(int64_t kc, const float* apack, const float* bpack,
                      float* c, int64_t ldc);

  // Direct small-GEMM kernels: no packing, operands row-major and fully
  // packed (lda=k or m, ldb=n or k, ldc=n — the only layout the public
  // entry points produce). These are the small-problem tier: below the
  // blocked break-even they skip panel packing entirely, and the batched
  // path strides them across a whole batch per dispatch.
  void (*small_nn)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);
  void (*small_nt)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);
  void (*small_tn)(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);

  // Measured direct-vs-blocked break-even, in FLOPs (2*m*n*k): below the
  // cutoff the direct kernel wins (packing amortizes nothing), above it
  // the blocked path wins. Per variant because the direct NT kernel (dot
  // products) behaves very differently from NN/TN (row streaming). See
  // docs/PERF.md "Dispatch tiers" for the measurement methodology.
  int64_t direct_cutoff_nn;
  int64_t direct_cutoff_nt;
  int64_t direct_cutoff_tn;
};

// Upper bounds on any tier's register tile; the blocked driver's tail
// scratch is sized to these and registration enforces them.
inline constexpr int kMaxMr = 8;
inline constexpr int kMaxNr = 32;

/// \brief Table for `isa`, falling back to the portable tier when `isa`
/// was not compiled in or the host cannot run it.
const GemmKernels& KernelsFor(Isa isa);

/// \brief KernelsFor(ActiveIsa()) — what the GEMM hot path uses.
const GemmKernels& ActiveKernels();

// ---------------------------------------------------------------------------
// Int8 GEMM tier (the quantized-inference path, see tensor/qgemm.h).
// ---------------------------------------------------------------------------

/// \brief AVX-512VNNI sub-feature probe. The int8 AVX-512 tier upgrades its
/// kernels to `vpdpbusd` when this is true; without it the tier runs the
/// 512-bit `maddubs` acc16 fast path + exact `madd` fallback instead.
bool HostSupportsVnni();

/// \brief AVX512BW sub-feature probe. The 512-bit int8 kernels need byte/
/// word instructions beyond AVX-512F; an F-only host (Knights-era) degrades
/// the int8 tier to AVX2 even though the fp32 tier stays at AVX-512.
bool HostSupportsAvx512Bw();

// Every int8 kernel may read rows of A in 4-byte groups, so the driver
// rounds each row's allocated stride up to a multiple of this and
// zero-fills the tail (u8 zero contributes nothing to any dot product).
inline constexpr int64_t kQGemmKPad = 4;

/// \brief One int8 GEMM kernel: C[m,n] (int32, fully overwritten) =
/// A(u8)[m,k] (row stride `lda` >= k, tail zero-padded per kQGemmKPad) times
/// B(s8)[k,n] (dense row-major). Kernels pack B into their own layout
/// internally (thread-local scratch); B is small and static at serve time,
/// so per-call packing amortizes over the m rows.
using QGemmFn = void (*)(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                         int64_t lda, const int8_t* b, int32_t* c);

/// \brief Per-tier int8 kernel table. Unlike the fp32 tiers, every int8
/// kernel — fast, exact, and direct, on every tier — produces bit-identical
/// int32 accumulators whenever the saturation guard admits the fast path:
/// integer math has one right answer, so results are bit-identical across
/// tiers AND thread counts (stronger than the fp32 within-tier contract).
struct QGemmKernels {
  Isa isa;

  // Always-correct int32 accumulation (widening multiplies, no intermediate
  // saturation). The requantize fallback when the acc16 guard fails.
  QGemmFn exact;

  // Acc16 fast path (`maddubs` pair-products in s16). Saturates when some
  // |a0*w0 + a1*w1| exceeds 32767 — callers must check the precomputed
  // pair bound (qgemm::MaddubsPairBound) against the batch's max activation
  // before using it, unless fast_is_exact.
  QGemmFn fast;

  // True when `fast` never saturates (portable scalar; AVX-512 with VNNI,
  // where vpdpbusd widens to int32 internally) — the driver then skips the
  // saturation guard entirely.
  bool fast_is_exact;

  // Unpacked small-problem kernel and its break-even in int8 products
  // (m*n*k): below the cutoff, packing B amortizes nothing and the direct
  // kernel wins (the analog of the fp32 direct-vs-blocked cutoffs). All
  // paths are bit-exact, so the cutoff may key on m without breaking
  // solo-vs-batched equality.
  QGemmFn direct;
  int64_t direct_cutoff;
};

/// \brief Int8 table for `isa`, degrading down the ladder (AVX-512 without
/// the BW subset degrades to AVX2, anything else to portable).
const QGemmKernels& QKernelsFor(Isa isa);

/// \brief QKernelsFor(ActiveIsa()) — what the int8 hot path uses.
const QGemmKernels& ActiveQKernels();

}  // namespace dader::cpu
