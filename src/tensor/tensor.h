// A dense float32 tensor with reverse-mode automatic differentiation.
//
// Tensors are cheap shared handles onto a TensorImpl holding contiguous
// row-major data. Operations (see ops.h, nn_ops.h, da_losses.h) record a
// dynamic tape: each result node keeps shared pointers to its parents and a
// backward closure. Tensor::Backward() on a scalar loss topologically sorts
// the tape and accumulates gradients into every node with requires_grad.
//
// The design intentionally mirrors a miniature PyTorch: identical training
// loop semantics (ZeroGrad / forward / Backward / optimizer step) so the
// DADER algorithms from the paper translate line by line.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace dader {

/// \brief Tensor shape: a list of non-negative dimension sizes.
using Shape = std::vector<int64_t>;

/// \brief Product of all dimensions (1 for rank-0, although rank-0 is not
/// used: scalars are shape {1}).
int64_t NumElements(const Shape& shape);

/// \brief "[2, 3, 4]"-style rendering for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor;

namespace internal {

/// \brief Reference-counted tensor storage plus its autograd tape entry.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;

  // --- autograd state ---
  bool requires_grad = false;
  std::vector<float> grad;  // same size as data once EnsureGrad() ran
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Called once during Backward() with this node (carrying its accumulated
  // output gradient); must add contributions into each parent's grad.
  std::function<void(const TensorImpl& self)> backward_fn;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// \brief Shared handle to a tensor; copying shares storage and tape state.
class Tensor {
 public:
  /// \brief Null handle; most APIs require a defined tensor.
  Tensor() = default;

  // --- factories ---
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Ones(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// \brief Takes ownership of `values`; size must equal NumElements(shape).
  static Tensor FromVector(Shape shape, std::vector<float> values,
                           bool requires_grad = false);
  /// \brief Scalar tensor of shape {1}.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// \brief i.i.d. Uniform(lo, hi) entries.
  static Tensor RandomUniform(Shape shape, float lo, float hi, Rng* rng,
                              bool requires_grad = false);
  /// \brief i.i.d. Normal(0, stddev) entries.
  static Tensor RandomNormal(Shape shape, float stddev, Rng* rng,
                             bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const Shape& shape() const { return impl_->shape; }
  int64_t dim(size_t i) const {
    DADER_CHECK_LT(i, impl_->shape.size());
    return impl_->shape[i];
  }
  size_t rank() const { return impl_->shape.size(); }
  int64_t numel() const { return impl_->numel(); }
  bool requires_grad() const { return impl_->requires_grad; }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  std::vector<float>& vec() { return impl_->data; }
  const std::vector<float>& vec() const { return impl_->data; }

  /// \brief Value of a scalar (shape {1}) tensor.
  float item() const {
    DADER_CHECK_EQ(numel(), 1);
    return impl_->data[0];
  }

  /// \brief Element accessor for 2-D tensors.
  float at(int64_t i, int64_t j) const {
    DADER_CHECK_EQ(rank(), 2u);
    return impl_->data[static_cast<size_t>(i * dim(1) + j)];
  }

  /// \brief Gradient buffer (valid after Backward); empty before.
  const std::vector<float>& grad() const { return impl_->grad; }
  std::vector<float>& mutable_grad() { return impl_->grad; }

  /// \brief Zeroes this tensor's gradient buffer.
  void ZeroGrad() {
    if (impl_->requires_grad) {
      impl_->EnsureGrad();
      std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
    }
  }

  /// \brief Copy of this tensor's data with no tape history and no grad.
  Tensor Detach() const;

  /// \brief Deep copy (data only, requires_grad preserved, no tape history).
  Tensor Clone() const;

  /// \brief Overwrites this tensor's data with `other`'s (shapes must match).
  /// Does not touch the tape; used for weight snapshot restore.
  void CopyDataFrom(const Tensor& other);

  /// \brief Runs reverse-mode autodiff from this scalar node.
  ///
  /// Requires numel() == 1 and requires_grad(). Gradients accumulate (are
  /// added) into every reachable node with requires_grad, so callers zero
  /// parameter grads between steps. Calling Backward on two different losses
  /// before stepping sums their gradients, which Algorithm 1 exploits.
  void Backward() const;

  std::string ToString(int max_per_dim = 6) const;

  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }

  /// \brief Wraps an existing impl (used by op implementations).
  static Tensor Wrap(std::shared_ptr<internal::TensorImpl> impl) {
    Tensor t;
    t.impl_ = std::move(impl);
    return t;
  }

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

namespace internal {

/// \brief Allocates a result node for an op: shape, zeroed data, parents,
/// requires_grad = any parent requires it.
std::shared_ptr<TensorImpl> MakeOpNode(
    Shape shape, std::vector<std::shared_ptr<TensorImpl>> parents);

}  // namespace internal
}  // namespace dader
