// First-order optimizers over a list of parameter tensors.
//
// The trainers in src/core update different parameter groups (F, M, A, F')
// at different times, so each group gets its own optimizer instance, as in
// Algorithms 1 and 2 of the paper.

#pragma once

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dader {

/// \brief Base class: owns references to parameters and applies updates
/// from their accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  /// \brief Applies one update using the current gradients.
  virtual void Step() = 0;

  /// \brief Zeroes the gradient of every parameter.
  void ZeroGrad();

  /// \brief Rescales all gradients so their global L2 norm is at most
  /// `max_norm`; returns the pre-clip norm. No-op when already within.
  float ClipGradNorm(float max_norm);

  /// \brief Changes the learning rate (used by lr sweeps in Figure 7).
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  float lr_ = 1e-3f;
};

/// \brief Stochastic gradient descent with optional momentum and decoupled
/// weight decay.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Tensor> params, float lr, float momentum = 0.0f,
               float weight_decay = 0.0f);
  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction and decoupled weight decay
/// (AdamW-style), the paper's optimizer for all DADER variants.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);
  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace dader
