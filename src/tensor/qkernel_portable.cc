// Portable int8 GEMM tier: plain C++ u8 x s8 -> int32, any CPU.
//
// Integer accumulation has exactly one right answer, so this TU is also the
// correctness oracle the SIMD int8 tiers are tested against bit-for-bit
// (qgemm.h exposes the exact kernel as NaiveQGemmNN). There is no acc16
// shortcut to take in scalar code — every product widens to int32 on the
// spot — so fast == exact and the table advertises fast_is_exact.

#include <cstdint>

#include "tensor/gemm_kernels.h"

namespace dader::cpu::internal {

namespace {

void QGemmPortable(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                   int64_t lda, const int8_t* b, int32_t* c) {
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* arow = a + i * lda;
    int32_t* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = 0;
    for (int64_t p = 0; p < k; ++p) {
      const int32_t av = static_cast<int32_t>(arow[p]);
      if (av == 0) continue;
      const int8_t* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * static_cast<int32_t>(brow[j]);
      }
    }
  }
}

const QGemmKernels kTable = {
    /*isa=*/Isa::kPortable,
    /*exact=*/&QGemmPortable,
    /*fast=*/&QGemmPortable,
    /*fast_is_exact=*/true,
    /*direct=*/&QGemmPortable,
    // The scalar kernel never packs, so there is no packed tier to cross
    // over to; the cutoff is irrelevant and set to 0 (always "blocked",
    // which is the same function).
    /*direct_cutoff=*/0,
};

}  // namespace

const QGemmKernels* PortableQKernels() { return &kTable; }

}  // namespace dader::cpu::internal
