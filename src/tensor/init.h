// Weight initialization schemes.

#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dader {

/// \brief Glorot/Xavier uniform init for a [fan_in, fan_out] weight matrix.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

/// \brief Kaiming/He normal init, suited to ReLU layers.
Tensor KaimingNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

/// \brief N(0, stddev) embedding table [vocab, dim].
Tensor EmbeddingInit(int64_t vocab, int64_t dim, Rng* rng,
                     float stddev = 0.02f);

}  // namespace dader
