#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace dader::quant {

namespace {

// Round-half-away-from-zero, the rounding both quantizers use. lrintf's
// result would depend on the ambient FP rounding mode; this is a fixed
// function of the input, which the bit-identity contract requires.
int32_t RoundAway(float v) {
  return static_cast<int32_t>(v >= 0.0f ? v + 0.5f : v - 0.5f);
}

thread_local std::vector<uint8_t> t_aq;
thread_local std::vector<int32_t> t_acc;

}  // namespace

void RangeObserver::Observe(const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    if (std::isfinite(v)) {
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
  }
  count += n;
}

ActQuant ActQuantFromRange(float min_v, float max_v) {
  ActQuant q;
  const float lo = std::min(min_v, 0.0f);
  const float hi = std::max(max_v, 0.0f);
  if (hi - lo <= 0.0f) return q;  // all-zero stream: scale 1, zp 0
  q.scale = (hi - lo) / 255.0f;
  // zp from the unrounded ratio: dividing by the already-rounded scale
  // double-rounds (e.g. [-1, 1] lands at 127.499992 instead of 127.5).
  q.zero_point = std::clamp(RoundAway(-lo * 255.0f / (hi - lo)), 0, 255);
  return q;
}

std::shared_ptr<const QuantizedLinear> QuantizeLinearWeights(
    const float* w, int64_t in, int64_t out, const float* bias, float act_min,
    float act_max) {
  DADER_CHECK(in > 0 && out > 0);
  auto q = std::make_shared<QuantizedLinear>();
  q->in = in;
  q->out = out;
  q->weight_q.resize(static_cast<size_t>(in * out));
  q->weight_scale.assign(static_cast<size_t>(out), 1.0f);
  q->col_sum.assign(static_cast<size_t>(out), 0);
  if (bias != nullptr) q->bias.assign(bias, bias + out);
  q->act = ActQuantFromRange(act_min, act_max);

  for (int64_t j = 0; j < out; ++j) {
    float amax = 0.0f;
    for (int64_t p = 0; p < in; ++p) {
      amax = std::max(amax, std::abs(w[p * out + j]));
    }
    if (amax > 0.0f) q->weight_scale[j] = amax / 127.0f;
  }
  for (int64_t p = 0; p < in; ++p) {
    for (int64_t j = 0; j < out; ++j) {
      const int32_t v =
          std::clamp(RoundAway(w[p * out + j] / q->weight_scale[j]), -127, 127);
      q->weight_q[p * out + j] = static_cast<int8_t>(v);
      q->col_sum[j] += v;
    }
  }
  q->pair_bound = qgemm::MaddubsPairBound(q->weight_q.data(), in, out);
  return q;
}

void QLinearForward(const QuantizedLinear& q, const float* x, int64_t m,
                    float* y, const qgemm::QGemmOptions& options) {
  DADER_CHECK(m >= 0);
  if (m == 0) return;
  const int64_t k = q.in;
  const int64_t n = q.out;
  const int64_t lda = qgemm::PaddedLda(k);
  t_aq.assign(static_cast<size_t>(m * lda), 0);
  t_acc.resize(static_cast<size_t>(m * n));

  // Quantize the batch; out-of-calibration values clamp to the u8 range.
  // a_max feeds the acc16 saturation guard — the padded zero tail never
  // raises it past any real activation.
  const float inv_scale = 1.0f / q.act.scale;
  const int32_t zp = q.act.zero_point;
  int32_t a_max = 0;
  for (int64_t i = 0; i < m; ++i) {
    const float* xr = x + i * k;
    uint8_t* ar = t_aq.data() + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const int32_t v = std::clamp(RoundAway(xr[p] * inv_scale) + zp, 0, 255);
      ar[p] = static_cast<uint8_t>(v);
      a_max = std::max(a_max, v);
    }
  }

  qgemm::QGemmNN(m, n, k, t_aq.data(), lda, q.weight_q.data(), t_acc.data(),
                 a_max, q.pair_bound, options);

  const float* bias = q.bias.empty() ? nullptr : q.bias.data();
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* accr = t_acc.data() + i * n;
    float* yr = y + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float deq = q.act.scale * q.weight_scale[j] *
                        static_cast<float>(accr[j] - zp * q.col_sum[j]);
      yr[j] = bias != nullptr ? deq + bias[j] : deq;
    }
  }
}

}  // namespace dader::quant
