#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace dader {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DADER_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

namespace {

std::shared_ptr<internal::TensorImpl> MakeLeaf(Shape shape,
                                               bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Wrap(MakeLeaf(std::move(shape), requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = MakeLeaf(std::move(shape), requires_grad);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Wrap(std::move(impl));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values,
                          bool requires_grad) {
  DADER_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

Tensor Tensor::RandomUniform(Shape shape, float lo, float hi, Rng* rng,
                             bool requires_grad) {
  DADER_CHECK(rng != nullptr);
  auto impl = MakeLeaf(std::move(shape), requires_grad);
  for (auto& v : impl->data) v = rng->NextFloat(lo, hi);
  return Wrap(std::move(impl));
}

Tensor Tensor::RandomNormal(Shape shape, float stddev, Rng* rng,
                            bool requires_grad) {
  DADER_CHECK(rng != nullptr);
  auto impl = MakeLeaf(std::move(shape), requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return Wrap(std::move(impl));
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Wrap(std::move(impl));
}

Tensor Tensor::Clone() const {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = impl_->requires_grad;
  return Wrap(std::move(impl));
}

void Tensor::CopyDataFrom(const Tensor& other) {
  DADER_CHECK(other.defined());
  DADER_CHECK(shape() == other.shape());
  impl_->data = other.impl_->data;
}

void Tensor::Backward() const {
  DADER_CHECK_MSG(impl_ != nullptr, "Backward on undefined tensor");
  DADER_CHECK_MSG(numel() == 1, "Backward requires a scalar loss");
  DADER_CHECK_MSG(impl_->requires_grad,
                  "Backward on a tensor that does not require grad");

  // Iterative post-order DFS over parents to get a topological order.
  std::vector<internal::TensorImpl*> topo;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < frame.node->parents.size()) {
      internal::TensorImpl* child =
          frame.node->parents[frame.next_child++].get();
      if (visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed d(loss)/d(loss) = 1 and sweep in reverse topological order.
  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn && node->requires_grad) {
      node->EnsureGrad();  // intermediate nodes may have no grad buffer yet
      node->backward_fn(*node);
    }
  }
}

std::string Tensor::ToString(int max_per_dim) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape()) << " [";
  const int64_t n = std::min<int64_t>(numel(), max_per_dim);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "]";
  return os.str();
}

namespace internal {

std::shared_ptr<TensorImpl> MakeOpNode(
    Shape shape, std::vector<std::shared_ptr<TensorImpl>> parents) {
  auto impl = std::make_shared<TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  for (const auto& p : parents) {
    if (p->requires_grad) {
      impl->requires_grad = true;
      break;
    }
  }
  impl->parents = std::move(parents);
  return impl;
}

}  // namespace internal
}  // namespace dader
