#include "tensor/serialize.h"

#include <cstdio>

#include "tensor/qgemm.h"
#include "util/io.h"

namespace dader {

namespace {
constexpr const char kMagic[] = "DADER_TENSORS";
// v2: CRC-32 footer over the whole payload, written via an atomic
// temp-file-then-rename so readers never observe a half-written file.
// v3: per-entry dtype tag (kDtypeF32 | kDtypeQLinear) between the name and
// the payload, enabling int8 quantized-Linear entries. The writer emits v2
// whenever no quantized entries are present, so fp32-only files stay
// readable by pre-v3 binaries. v1 files (no footer) are rejected by the
// version check; the only v1 producer (the pre-train cache) regenerates on
// load failure.
constexpr uint32_t kVersionDense = 2;
constexpr uint32_t kVersionQuant = 3;
// A checkpoint holds at most a few hundred named tensors; anything beyond
// this is a corrupt count field, not a real collection.
constexpr uint64_t kMaxTensors = 1ULL << 20;

constexpr uint32_t kDtypeF32 = 0;
constexpr uint32_t kDtypeQLinear = 1;

void WriteDense(BinaryWriter& w, const Tensor& tensor) {
  std::vector<int64_t> shape(tensor.shape().begin(), tensor.shape().end());
  w.WriteI64s(shape);
  w.WriteFloats(tensor.vec());
}

Result<Tensor> ReadDense(BinaryReader& r, const std::string& name,
                         const std::string& path) {
  DADER_ASSIGN_OR_RETURN(std::vector<int64_t> shape, r.ReadI64s());
  DADER_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadFloats());
  for (int64_t dim : shape) {
    if (dim < 0) {
      return Status::InvalidArgument("negative dimension in tensor '" + name +
                                     "' in " + path);
    }
  }
  Shape s(shape.begin(), shape.end());
  if (NumElements(s) != static_cast<int64_t>(data.size())) {
    return Status::InvalidArgument("corrupt tensor '" + name + "' in " + path +
                                   ": shape/payload size mismatch");
  }
  return Tensor::FromVector(std::move(s), std::move(data));
}

void WriteQLinear(BinaryWriter& w, const quant::QuantizedLinear& q) {
  w.WriteI64(q.in);
  w.WriteI64(q.out);
  w.WriteI8s(q.weight_q);
  w.WriteFloats(q.weight_scale);
  w.WriteFloats(q.bias);
  w.WriteF32(q.act.scale);
  w.WriteU32(static_cast<uint32_t>(q.act.zero_point));
}

Result<std::shared_ptr<const quant::QuantizedLinear>> ReadQLinear(
    BinaryReader& r, const std::string& name, const std::string& path) {
  auto q = std::make_shared<quant::QuantizedLinear>();
  DADER_ASSIGN_OR_RETURN(q->in, r.ReadI64());
  DADER_ASSIGN_OR_RETURN(q->out, r.ReadI64());
  DADER_ASSIGN_OR_RETURN(q->weight_q, r.ReadI8s());
  DADER_ASSIGN_OR_RETURN(q->weight_scale, r.ReadFloats());
  DADER_ASSIGN_OR_RETURN(q->bias, r.ReadFloats());
  DADER_ASSIGN_OR_RETURN(q->act.scale, r.ReadF32());
  DADER_ASSIGN_OR_RETURN(uint32_t zp, r.ReadU32());
  q->act.zero_point = static_cast<int32_t>(zp);
  const std::string what = "quantized entry '" + name + "' in " + path;
  if (q->in <= 0 || q->out <= 0 ||
      static_cast<int64_t>(q->weight_q.size()) != q->in * q->out ||
      static_cast<int64_t>(q->weight_scale.size()) != q->out ||
      (!q->bias.empty() &&
       static_cast<int64_t>(q->bias.size()) != q->out) ||
      q->act.zero_point < 0 || q->act.zero_point > 255 ||
      !(q->act.scale > 0.0f)) {
    return Status::InvalidArgument("corrupt " + what);
  }
  // col_sum and pair_bound are derived state: recompute instead of trusting
  // the file, so they can never disagree with the weights.
  q->col_sum.assign(static_cast<size_t>(q->out), 0);
  for (int64_t p = 0; p < q->in; ++p) {
    for (int64_t j = 0; j < q->out; ++j) {
      q->col_sum[j] += q->weight_q[p * q->out + j];
    }
  }
  q->pair_bound = qgemm::MaddubsPairBound(q->weight_q.data(), q->in, q->out);
  return std::shared_ptr<const quant::QuantizedLinear>(std::move(q));
}

}  // namespace

Status SaveTensorFile(const std::string& path, const TensorFile& file) {
  const uint32_t version =
      file.quant.empty() ? kVersionDense : kVersionQuant;
  const std::string tmp = path + ".tmp";
  Status write_status = [&]() -> Status {
    DADER_ASSIGN_OR_RETURN(BinaryWriter w,
                           BinaryWriter::Open(tmp, kMagic, version));
    w.WriteU64(file.dense.size() + file.quant.size());
    for (const auto& [name, tensor] : file.dense) {
      if (!tensor.defined()) {
        return Status::InvalidArgument("undefined tensor '" + name + "'");
      }
      if (file.quant.count(name) != 0) {
        return Status::InvalidArgument("name '" + name +
                                       "' is both dense and quantized");
      }
      w.WriteString(name);
      if (version >= kVersionQuant) w.WriteU32(kDtypeF32);
      WriteDense(w, tensor);
    }
    for (const auto& [name, q] : file.quant) {
      if (q == nullptr) {
        return Status::InvalidArgument("null quantized entry '" + name + "'");
      }
      w.WriteString(name);
      w.WriteU32(kDtypeQLinear);
      WriteQLinear(w, *q);
    }
    return w.WriteCrcFooterAndClose();
  }();
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<TensorFile> LoadTensorFile(const std::string& path) {
  uint32_t version = 0;
  DADER_ASSIGN_OR_RETURN(
      BinaryReader r,
      BinaryReader::OpenVersionRange(path, kMagic, kVersionDense,
                                     kVersionQuant, &version));
  DADER_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  if (count > kMaxTensors) {
    return Status::InvalidArgument("implausible tensor count " +
                                   std::to_string(count) + " in " + path +
                                   " (corrupt header?)");
  }
  TensorFile out;
  for (uint64_t i = 0; i < count; ++i) {
    DADER_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    uint32_t dtype = kDtypeF32;
    if (version >= kVersionQuant) {
      DADER_ASSIGN_OR_RETURN(dtype, r.ReadU32());
    }
    const bool duplicate =
        out.dense.count(name) != 0 || out.quant.count(name) != 0;
    if (duplicate) {
      return Status::InvalidArgument("duplicate tensor name '" + name +
                                     "' in " + path);
    }
    if (dtype == kDtypeF32) {
      DADER_ASSIGN_OR_RETURN(Tensor t, ReadDense(r, name, path));
      out.dense.emplace(name, std::move(t));
    } else if (dtype == kDtypeQLinear) {
      DADER_ASSIGN_OR_RETURN(auto q, ReadQLinear(r, name, path));
      out.quant.emplace(name, std::move(q));
    } else {
      return Status::InvalidArgument("unknown dtype tag " +
                                     std::to_string(dtype) + " for '" + name +
                                     "' in " + path);
    }
  }
  // Reject any bit-flip in the payload (and files missing the footer).
  DADER_RETURN_NOT_OK(r.VerifyCrcFooter(path));
  return out;
}

Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors) {
  TensorFile file;
  file.dense = tensors;
  return SaveTensorFile(path, file);
}

Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  DADER_ASSIGN_OR_RETURN(TensorFile file, LoadTensorFile(path));
  if (!file.quant.empty()) {
    return Status::InvalidArgument(
        path + " carries quantized entries; load it with LoadTensorFile");
  }
  return std::move(file.dense);
}

}  // namespace dader
