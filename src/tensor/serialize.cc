#include "tensor/serialize.h"

#include "util/io.h"

namespace dader {

namespace {
constexpr const char kMagic[] = "DADER_TENSORS";
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors) {
  DADER_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path, kMagic, kVersion));
  w.WriteU64(tensors.size());
  for (const auto& [name, tensor] : tensors) {
    if (!tensor.defined()) {
      return Status::InvalidArgument("undefined tensor '" + name + "'");
    }
    w.WriteString(name);
    std::vector<int64_t> shape(tensor.shape().begin(), tensor.shape().end());
    w.WriteI64s(shape);
    w.WriteFloats(tensor.vec());
  }
  return w.Close();
}

Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  DADER_ASSIGN_OR_RETURN(BinaryReader r,
                         BinaryReader::Open(path, kMagic, kVersion));
  DADER_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    DADER_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    DADER_ASSIGN_OR_RETURN(std::vector<int64_t> shape, r.ReadI64s());
    DADER_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadFloats());
    Shape s(shape.begin(), shape.end());
    if (NumElements(s) != static_cast<int64_t>(data.size())) {
      return Status::InvalidArgument("corrupt tensor '" + name + "' in " + path);
    }
    out.emplace(name, Tensor::FromVector(std::move(s), std::move(data)));
  }
  return out;
}

}  // namespace dader
