#include "tensor/serialize.h"

#include <cstdio>

#include "util/io.h"

namespace dader {

namespace {
constexpr const char kMagic[] = "DADER_TENSORS";
// v2: CRC-32 footer over the whole payload, written via an atomic
// temp-file-then-rename so readers never observe a half-written file.
// v1 files (no footer) are rejected by the version check; the only v1
// producer (the pre-train cache) regenerates on load failure.
constexpr uint32_t kVersion = 2;
// A checkpoint holds at most a few hundred named tensors; anything beyond
// this is a corrupt count field, not a real collection.
constexpr uint64_t kMaxTensors = 1ULL << 20;
}  // namespace

Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors) {
  const std::string tmp = path + ".tmp";
  Status write_status = [&]() -> Status {
    DADER_ASSIGN_OR_RETURN(BinaryWriter w,
                           BinaryWriter::Open(tmp, kMagic, kVersion));
    w.WriteU64(tensors.size());
    for (const auto& [name, tensor] : tensors) {
      if (!tensor.defined()) {
        return Status::InvalidArgument("undefined tensor '" + name + "'");
      }
      w.WriteString(name);
      std::vector<int64_t> shape(tensor.shape().begin(), tensor.shape().end());
      w.WriteI64s(shape);
      w.WriteFloats(tensor.vec());
    }
    return w.WriteCrcFooterAndClose();
  }();
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  DADER_ASSIGN_OR_RETURN(BinaryReader r,
                         BinaryReader::Open(path, kMagic, kVersion));
  DADER_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  if (count > kMaxTensors) {
    return Status::InvalidArgument(
        "implausible tensor count " + std::to_string(count) + " in " + path +
        " (corrupt header?)");
  }
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    DADER_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    DADER_ASSIGN_OR_RETURN(std::vector<int64_t> shape, r.ReadI64s());
    DADER_ASSIGN_OR_RETURN(std::vector<float> data, r.ReadFloats());
    for (int64_t dim : shape) {
      if (dim < 0) {
        return Status::InvalidArgument("negative dimension in tensor '" +
                                       name + "' in " + path);
      }
    }
    Shape s(shape.begin(), shape.end());
    if (NumElements(s) != static_cast<int64_t>(data.size())) {
      return Status::InvalidArgument("corrupt tensor '" + name + "' in " +
                                     path + ": shape/payload size mismatch");
    }
    if (!out.emplace(name, Tensor::FromVector(std::move(s), std::move(data)))
             .second) {
      return Status::InvalidArgument("duplicate tensor name '" + name +
                                     "' in " + path);
    }
  }
  // Reject any bit-flip in the payload (and files missing the footer).
  DADER_RETURN_NOT_OK(r.VerifyCrcFooter(path));
  return out;
}

}  // namespace dader
