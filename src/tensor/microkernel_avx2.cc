// AVX2+FMA GEMM kernel tier.
//
// Compiled with -mavx2 -mfma regardless of the global architecture flags
// (src/tensor/CMakeLists.txt); cpu_dispatch routes here when the host has
// AVX2+FMA but not AVX-512F, or when DADER_CPU_ISA=avx2 pins the tier.
// Mirrors the AVX-512 TU's three kernels at 8-lane width — see
// microkernel_avx512.cc for the design commentary; only the differences
// are noted here:
//
//   * The register tile is 6x16 (12 ymm accumulators + 2 B vectors + 1
//     broadcast = 15 of 16 architectural ymm registers) — an 8x32 tile
//     would spill. Packing follows the table geometry, so the tile change
//     is invisible outside this TU.
//   * AVX2 has no lane masks; edge columns use _mm256_maskload_ps /
//     _mm256_maskstore_ps with a sign-bit mask vector instead.
//
// Within-tier determinism is the same contract as every other tier:
// identical lane-wise operation sequence per shape, so bits never depend
// on thread count.

#include "tensor/gemm_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstdint>
#include <vector>

namespace dader::cpu::internal {

namespace {

constexpr int kMr = 6;
constexpr int kNr = 16;

// Sign-bit lane mask for _mm256_maskload_ps: lanes [0, count) active.
__m256i TailMask(int64_t count) {
  alignas(32) int32_t lanes[8];
  for (int i = 0; i < 8; ++i) lanes[i] = i < count ? -1 : 0;
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
}

float Hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  lo = _mm_add_ps(lo, _mm256_extractf128_ps(v, 1));
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

void MicroKernelAvx2(int64_t kc, const float* apack, const float* bpack,
                     float* c, int64_t ldc) {
  __m256 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_loadu_ps(c + r * ldc);
    acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bpack + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bpack + p * kNr + 8);
    const float* ap = apack + p * kMr;
    for (int r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_set1_ps(ap[r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

// See DirectRowStream in microkernel_avx512.cc; 8-lane column chunks,
// six-row accumulator fan (matching the tile height keeps register use
// within the 16-ymm budget alongside the mask and broadcast).
void DirectRowStream(int64_t m, int64_t n, int64_t k, const float* a,
                     int64_t sr, int64_t sp, const float* b, float* c) {
  for (int64_t j0 = 0; j0 < n; j0 += 8) {
    const int64_t nr = n - j0 < 8 ? n - j0 : 8;
    const bool full = nr == 8;
    const __m256i mask = TailMask(nr);
    int64_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      __m256 acc[kMr];
      for (int r = 0; r < kMr; ++r) {
        float* crow = c + (i + r) * n + j0;
        acc[r] = full ? _mm256_loadu_ps(crow)
                      : _mm256_maskload_ps(crow, mask);
      }
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const __m256 bv =
            full ? _mm256_loadu_ps(brow) : _mm256_maskload_ps(brow, mask);
        for (int r = 0; r < kMr; ++r) {
          const __m256 av = _mm256_set1_ps(a[(i + r) * sr + p * sp]);
          acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
        }
      }
      for (int r = 0; r < kMr; ++r) {
        float* crow = c + (i + r) * n + j0;
        if (full) {
          _mm256_storeu_ps(crow, acc[r]);
        } else {
          _mm256_maskstore_ps(crow, mask, acc[r]);
        }
      }
    }
    for (; i < m; ++i) {
      float* crow = c + i * n + j0;
      __m256 acc =
          full ? _mm256_loadu_ps(crow) : _mm256_maskload_ps(crow, mask);
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const __m256 bv =
            full ? _mm256_loadu_ps(brow) : _mm256_maskload_ps(brow, mask);
        acc = _mm256_fmadd_ps(_mm256_set1_ps(a[i * sr + p * sp]), bv, acc);
      }
      if (full) {
        _mm256_storeu_ps(crow, acc);
      } else {
        _mm256_maskstore_ps(crow, mask, acc);
      }
    }
  }
}

// See DirectDots in microkernel_avx512.cc; 8-lane vectors, four-column fan.
void DirectDots(int64_t m, int64_t n, int64_t k, const float* a,
                const float* bt, float* c) {
  const int64_t ktail = k & 7;
  const __m256i kmask = TailMask(ktail);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      const float* b0 = bt + (j + 0) * k;
      const float* b1 = bt + (j + 1) * k;
      const float* b2 = bt + (j + 2) * k;
      const float* b3 = bt + (j + 3) * k;
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 av = _mm256_loadu_ps(arow + p);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + p), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + p), acc3);
      }
      if (ktail != 0) {
        const __m256 av = _mm256_maskload_ps(arow + p, kmask);
        acc0 = _mm256_fmadd_ps(av, _mm256_maskload_ps(b0 + p, kmask), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_maskload_ps(b1 + p, kmask), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_maskload_ps(b2 + p, kmask), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_maskload_ps(b3 + p, kmask), acc3);
      }
      crow[j + 0] += Hsum(acc0);
      crow[j + 1] += Hsum(acc1);
      crow[j + 2] += Hsum(acc2);
      crow[j + 3] += Hsum(acc3);
    }
    for (; j < n; ++j) {
      __m256 acc = _mm256_setzero_ps();
      const float* brow = bt + j * k;
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(brow + p), acc);
      }
      if (ktail != 0) {
        acc = _mm256_fmadd_ps(_mm256_maskload_ps(arow + p, kmask),
                              _mm256_maskload_ps(brow + p, kmask), acc);
      }
      crow[j] += Hsum(acc);
    }
  }
}

// Below this N the row-stream kernel wastes most of its 8 lanes; transpose
// B and use k-long dots instead (same rationale as the AVX-512 tier, at
// half the lane width). n/k-only, never m — see the AVX-512 tier for why
// an m-dependent kernel choice breaks solo-vs-batched bit equality.
constexpr int64_t kNarrowN = 4;

thread_local std::vector<float> t_btrans;

void SmallNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  if (n < kNarrowN) {
    t_btrans.resize(static_cast<size_t>(n) * k);
    float* bt = t_btrans.data();
    for (int64_t p = 0; p < k; ++p)
      for (int64_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
    DirectDots(m, n, k, a, bt, c);
    return;
  }
  DirectRowStream(m, n, k, a, /*sr=*/k, /*sp=*/1, b, c);
}

void SmallNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  DirectDots(m, n, k, a, b, c);
}

void SmallTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  DirectRowStream(m, n, k, a, /*sr=*/1, /*sp=*/m, b, c);
}

// Break-evens measured with DADER_CPU_ISA=avx2 on the same container as
// the AVX-512 tier (the tuner pins the tier, so the numbers reflect these
// kernels, not the host's best): NN and TN cross between 64^3 (0.5 MF,
// direct) and 96^3 (1.8 MF, blocked); NT goes packed from 16^3 up, same
// horizontal-reduce rationale as the AVX-512 table.
const GemmKernels kTable = {
    /*isa=*/Isa::kAvx2,
    /*mr=*/kMr,
    /*nr=*/kNr,
    /*mc=*/60,
    /*kc=*/256,
    /*nc=*/512,
    /*microkernel=*/&MicroKernelAvx2,
    /*small_nn=*/&SmallNN,
    /*small_nt=*/&SmallNT,
    /*small_tn=*/&SmallTN,
    /*direct_cutoff_nn=*/1'200'000,
    /*direct_cutoff_nt=*/4'096,
    /*direct_cutoff_tn=*/1'200'000,
};

}  // namespace

const GemmKernels* Avx2Kernels() { return &kTable; }

}  // namespace dader::cpu::internal

#else  // !(__AVX2__ && __FMA__)

namespace dader::cpu::internal {
const GemmKernels* Avx2Kernels() { return nullptr; }
}  // namespace dader::cpu::internal

#endif
