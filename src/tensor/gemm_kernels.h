// Internal registration interface between cpu_dispatch.cc and the per-ISA
// microkernel translation units. Each TU returns its kernel table, or null
// when it was compiled without the matching ISA flags (non-x86 build, or a
// toolchain that lacks them) — cpu_dispatch treats null as "tier absent"
// and falls back down the ladder. Not part of the public tensor API.

#pragma once

#include "tensor/cpu_dispatch.h"

namespace dader::cpu::internal {

// Always non-null: the portable tier is plain C++ and compiles everywhere.
// Its small_* kernels double as the repo's naive reference loops (the
// correctness oracle gemm.h exposes as NaiveGemm*).
const GemmKernels* PortableKernels();

// Null unless the TU was built with -mavx2 -mfma.
const GemmKernels* Avx2Kernels();

// Null unless the TU was built with -mavx512f.
const GemmKernels* Avx512Kernels();

// Int8 tables, same registration scheme. The portable table is always
// non-null; its exact kernel doubles as the correctness oracle qgemm.h
// exposes as NaiveQGemmNN.
const QGemmKernels* PortableQKernels();

// Null unless built with -mavx2.
const QGemmKernels* Avx2QKernels();

// Null unless built with -mavx512f -mavx512bw. When the VNNI TU below is
// also compiled and the host supports avx512_vnni, this table's fast/exact
// pointers are the vpdpbusd kernel (fast_is_exact).
const QGemmKernels* Avx512QKernels();

// Null unless built with -mavx512vnni (plus f/bw). Never registered
// directly with the dispatch ladder: Avx512QKernels() folds it in after a
// runtime HostSupportsVnni() probe.
const QGemmKernels* Avx512VnniQKernels();

}  // namespace dader::cpu::internal
