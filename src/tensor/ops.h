// Differentiable tensor operations: arithmetic, activations, matrix
// multiplication, and shape manipulation.
//
// All ops allocate a fresh output node and record a backward closure when
// any input requires a gradient. Shapes are validated with CHECKs: shape
// mismatches inside the model are programmer errors, not recoverable ones.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace dader::ops {

// ---------------------------------------------------------------------------
// Elementwise arithmetic
// ---------------------------------------------------------------------------

/// \brief a + b. Shapes must be equal, or b may be a {d} vector broadcast
/// across the last dimension of a (bias add), or a {1} scalar.
Tensor Add(const Tensor& a, const Tensor& b);

/// \brief a - b. Shapes equal or b scalar {1}.
Tensor Sub(const Tensor& a, const Tensor& b);

/// \brief Elementwise a * b. Shapes equal, or b broadcast {d} / scalar {1}.
Tensor Mul(const Tensor& a, const Tensor& b);

/// \brief a + c for a float constant c.
Tensor AddScalar(const Tensor& a, float c);

/// \brief a * c for a float constant c.
Tensor MulScalar(const Tensor& a, float c);

/// \brief -a.
Tensor Neg(const Tensor& a);

// ---------------------------------------------------------------------------
// Activations and pointwise functions
// ---------------------------------------------------------------------------

Tensor Relu(const Tensor& a);
/// \brief max(x, alpha*x); the paper's InvGAN discriminator uses LeakyReLU.
Tensor LeakyRelu(const Tensor& a, float alpha = 0.01f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// \brief log(max(x, eps)) — clamped for numeric safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);
/// \brief sqrt(max(x, eps)) — clamped so the gradient stays finite at 0.
Tensor Sqrt(const Tensor& a, float eps = 1e-12f);

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// \brief [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// \brief [B,m,k] x [B,k,n] -> [B,m,n].
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

/// \brief [B,m,k] x [B,n,k] -> [B,m,n], i.e. a · bᵀ per batch element
/// without materializing the transpose. Attention scores (q · kᵀ) use this;
/// the transposition happens inside the GEMM packing (see tensor/gemm.h).
Tensor BatchMatMulNT(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// \brief Same data, new shape (same element count). Copies.
Tensor Reshape(const Tensor& a, Shape shape);

/// \brief Swap the last two axes of a rank-2 or rank-3 tensor.
Tensor TransposeLast2(const Tensor& a);

/// \brief Swap two arbitrary axes of any-rank tensor (materializing).
/// Multi-head attention uses this for [B,L,H,dh] <-> [B,H,L,dh].
Tensor SwapAxes(const Tensor& a, int ax0, int ax1);

/// \brief Concatenate along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// \brief Remove `axis` by selecting `index` along it
/// (e.g. [B,L,d], axis=1, i=0 -> [B,d]: the [CLS] position).
Tensor SelectAxis(const Tensor& a, int axis, int64_t index);

/// \brief Contiguous slice [start, start+len) along axis 0.
Tensor SliceAxis0(const Tensor& a, int64_t start, int64_t len);

/// \brief Stack N same-shaped tensors into a new leading axis.
Tensor Stack0(const std::vector<Tensor>& parts);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// \brief Sum of all elements -> scalar {1}.
Tensor SumAll(const Tensor& a);

/// \brief Mean of all elements -> scalar {1}.
Tensor MeanAll(const Tensor& a);

/// \brief Mean along `axis`, removing it ([B,L,d], axis=1 -> [B,d]).
Tensor MeanAxis(const Tensor& a, int axis);

/// \brief Row-wise max along the last axis ([n,d] -> [n]); used by pooling.
Tensor MaxLastAxis(const Tensor& a);

}  // namespace dader::ops
