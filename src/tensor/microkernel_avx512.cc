// AVX-512F GEMM kernel tier.
//
// This TU is compiled with -mavx512f regardless of the global architecture
// flags (see src/tensor/CMakeLists.txt), so the binary as a whole still
// loads on older CPUs; cpu_dispatch only routes here after a runtime cpuid
// probe confirms AVX-512F. When the toolchain cannot build AVX-512 code
// the file degrades to a null registration and the dispatch ladder skips
// the tier.
//
// Three kernels:
//   * MicroKernel — the packed 8x32 register tile: 16 zmm accumulators
//     (8 rows x 2 vectors), loaded from C, FMA-updated over the whole KC
//     depth with strictly ascending p, stored once. Identical math to the
//     portable tile, but the FMAs, and therefore the last-ulp rounding,
//     are guaranteed rather than left to the auto-vectorizer.
//   * DirectRowStream — the unpacked small-GEMM kernel for NN/TN: streams
//     B rows through masked 16-lane FMAs into 8 row accumulators, reading
//     A in place (row-major or transposed via strides). No packing, so
//     sub-break-even shapes skip the blocked path's setup entirely.
//   * DirectDots — the unpacked NT kernel: 16-lane FMA dot products with a
//     four-wide accumulator fan and a single reduce per output. Also backs
//     narrow-N NN/TN shapes (e.g. the 32x2x64 matcher head) after an
//     on-the-fly transpose of B into per-thread scratch: with n < 8 the
//     row-stream kernel would waste 14+ of 16 lanes, while k-long dots use
//     every lane.
//
// Determinism: for a fixed shape every kernel performs the identical
// sequence of lane-wise operations no matter which thread runs it, so
// results are bit-identical across thread counts and run-to-run within
// this tier. Reductions (DirectDots) and FMA contraction differ from the
// portable tier's ordering, which is why cross-tier bits may differ in the
// last ulps — see docs/PERF.md.

#include "tensor/gemm_kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstdint>
#include <vector>

// gcc 12's -Wmaybe-uninitialized false-positives on the masked-load
// builtins' undefined passthrough operand inside avx512fintrin.h; the
// maskz_ forms zero those lanes by definition.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace dader::cpu::internal {

namespace {

constexpr int kMr = 8;
constexpr int kNr = 32;

void MicroKernelAvx512(int64_t kc, const float* apack, const float* bpack,
                       float* c, int64_t ldc) {
  __m512 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    acc[r][0] = _mm512_loadu_ps(c + r * ldc);
    acc[r][1] = _mm512_loadu_ps(c + r * ldc + 16);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bpack + p * kNr);
    const __m512 b1 = _mm512_loadu_ps(bpack + p * kNr + 16);
    const float* ap = apack + p * kMr;
    for (int r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(ap[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(c + r * ldc, acc[r][0]);
    _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
  }
}

// C[i, j0:j0+16(masked)] += sum_p A(i, p) * B[p, j0:...] for 8 rows at a
// time; A(i, p) = a[i*sr + p*sp] covers both row-major A (sr=k, sp=1) and
// transposed A (sr=1, sp=m). Eight accumulator chains cover FMA latency.
void DirectRowStream(int64_t m, int64_t n, int64_t k, const float* a,
                     int64_t sr, int64_t sp, const float* b, float* c) {
  for (int64_t j0 = 0; j0 < n; j0 += 16) {
    const int64_t nr = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask =
        nr == 16 ? static_cast<__mmask16>(0xFFFF)
                 : static_cast<__mmask16>((1u << nr) - 1u);
    int64_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      __m512 acc[kMr];
      for (int r = 0; r < kMr; ++r)
        acc[r] = _mm512_maskz_loadu_ps(mask, c + (i + r) * n + j0);
      for (int64_t p = 0; p < k; ++p) {
        const __m512 bv = _mm512_maskz_loadu_ps(mask, b + p * n + j0);
        for (int r = 0; r < kMr; ++r) {
          const __m512 av = _mm512_set1_ps(a[(i + r) * sr + p * sp]);
          acc[r] = _mm512_fmadd_ps(av, bv, acc[r]);
        }
      }
      for (int r = 0; r < kMr; ++r)
        _mm512_mask_storeu_ps(c + (i + r) * n + j0, mask, acc[r]);
    }
    for (; i < m; ++i) {
      __m512 acc = _mm512_maskz_loadu_ps(mask, c + i * n + j0);
      for (int64_t p = 0; p < k; ++p) {
        const __m512 bv = _mm512_maskz_loadu_ps(mask, b + p * n + j0);
        acc = _mm512_fmadd_ps(_mm512_set1_ps(a[i * sr + p * sp]), bv, acc);
      }
      _mm512_mask_storeu_ps(c + i * n + j0, mask, acc);
    }
  }
}

// C[m,n] += A[m,k] * Bt[n,k]^T as dot products: four output columns per
// pass, each with its own 16-lane accumulator, one reduce per output.
void DirectDots(int64_t m, int64_t n, int64_t k, const float* a,
                const float* bt, float* c) {
  const int64_t ktail = k & 15;
  const __mmask16 kmask = static_cast<__mmask16>((1u << ktail) - 1u);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
      const float* b0 = bt + (j + 0) * k;
      const float* b1 = bt + (j + 1) * k;
      const float* b2 = bt + (j + 2) * k;
      const float* b3 = bt + (j + 3) * k;
      int64_t p = 0;
      for (; p + 16 <= k; p += 16) {
        const __m512 av = _mm512_loadu_ps(arow + p);
        acc0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b0 + p), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b1 + p), acc1);
        acc2 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b2 + p), acc2);
        acc3 = _mm512_fmadd_ps(av, _mm512_loadu_ps(b3 + p), acc3);
      }
      if (ktail != 0) {
        const __m512 av = _mm512_maskz_loadu_ps(kmask, arow + p);
        acc0 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(kmask, b0 + p), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(kmask, b1 + p), acc1);
        acc2 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(kmask, b2 + p), acc2);
        acc3 = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(kmask, b3 + p), acc3);
      }
      crow[j + 0] += _mm512_reduce_add_ps(acc0);
      crow[j + 1] += _mm512_reduce_add_ps(acc1);
      crow[j + 2] += _mm512_reduce_add_ps(acc2);
      crow[j + 3] += _mm512_reduce_add_ps(acc3);
    }
    for (; j < n; ++j) {
      __m512 acc = _mm512_setzero_ps();
      const float* brow = bt + j * k;
      int64_t p = 0;
      for (; p + 16 <= k; p += 16) {
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(arow + p),
                              _mm512_loadu_ps(brow + p), acc);
      }
      if (ktail != 0) {
        acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(kmask, arow + p),
                              _mm512_maskz_loadu_ps(kmask, brow + p), acc);
      }
      crow[j] += _mm512_reduce_add_ps(acc);
    }
  }
}

// Narrow-N threshold: below this the row-stream kernel wastes most of its
// 16 lanes and the transpose-to-dots path wins (measured: the 32x2x64
// matcher head runs ~4x faster through dots). The rule must depend on n
// and k only, NEVER on m: the same logical row served solo (m=1) or
// inside a batch (m=5) has to take the same kernel, or its bits change
// with batching — the dist pipelined-vs-serial test caught exactly that.
constexpr int64_t kNarrowN = 8;

thread_local std::vector<float> t_btrans;

void SmallNN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  if (n < kNarrowN) {
    t_btrans.resize(static_cast<size_t>(n) * k);
    float* bt = t_btrans.data();
    for (int64_t p = 0; p < k; ++p)
      for (int64_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
    DirectDots(m, n, k, a, bt, c);
    return;
  }
  DirectRowStream(m, n, k, a, /*sr=*/k, /*sp=*/1, b, c);
}

void SmallNT(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  DirectDots(m, n, k, a, b, c);
}

void SmallTN(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  DirectRowStream(m, n, k, a, /*sr=*/1, /*sp=*/m, b, c);
}

// Direct-vs-blocked break-evens measured on the AVX-512 container this
// repo benches on (docs/PERF.md "Dispatch tiers"). Cube sweeps put the NN
// cross between 160^3 (8.2 MF, direct 160 vs 154 GF/s) and 192^3 (14 MF,
// direct 129 vs blocked 161); TN crosses between 96^3 (1.8 MF) and 128^3
// (4.2 MF). NT is the outlier: the packed path wins from 16^3 (8 KF) up
// because DirectDots pays a horizontal reduce per output, so only
// truly tiny products (single served pairs) stay direct. Skinny shapes
// (2048x64x64, 64x64x2048) favor direct somewhat past the cube cross, but
// the table's contract is a flops-only cutoff, so cubes calibrate it.
const GemmKernels kTable = {
    /*isa=*/Isa::kAvx512,
    /*mr=*/kMr,
    /*nr=*/kNr,
    /*mc=*/64,
    /*kc=*/256,
    /*nc=*/512,
    /*microkernel=*/&MicroKernelAvx512,
    /*small_nn=*/&SmallNN,
    /*small_nt=*/&SmallNT,
    /*small_tn=*/&SmallTN,
    /*direct_cutoff_nn=*/12'000'000,
    /*direct_cutoff_nt=*/4'096,
    /*direct_cutoff_tn=*/3'000'000,
};

}  // namespace

const GemmKernels* Avx512Kernels() { return &kTable; }

}  // namespace dader::cpu::internal

#else  // !defined(__AVX512F__)

namespace dader::cpu::internal {
const GemmKernels* Avx512Kernels() { return nullptr; }
}  // namespace dader::cpu::internal

#endif
