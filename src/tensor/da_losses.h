// Discrepancy-based domain-adaptation losses, Section 5.1 of the paper.
//
// Both losses are fused ops with hand-derived backward passes (verified
// against numeric gradients in tests/tensor/da_losses_test.cc), because
// composing them from primitive ops would dominate tape size for no benefit.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace dader::ops {

/// \brief Squared Maximum Mean Discrepancy (Eq. 5) between source features
/// xs [n,d] and target features xt [m,d], with a multi-bandwidth RBF kernel
///   k(x,y) = sum_b exp(-||x-y||^2 / (2*sigma_b^2)).
///
/// Uses the biased V-statistic estimator
///   (1/n^2) sum k(s,s) + (1/m^2) sum k(t,t) - (2/nm) sum k(s,t),
/// which is >= 0 and equals ~0 when the two samples coincide. When
/// `bandwidths` is empty, the median pairwise distance heuristic picks
/// sigma^2 in {1/4, 1/2, 1, 2, 4} x median^2 (gradient does not flow
/// through the bandwidth choice, as is standard).
Tensor MmdLoss(const Tensor& xs, const Tensor& xt,
               std::vector<float> bandwidths = {});

/// \brief Non-differentiable MMD value between two feature matrices; used
/// by the Figure-6 dataset-distance analysis.
float MmdValue(const Tensor& xs, const Tensor& xt,
               std::vector<float> bandwidths = {});

/// \brief CORAL / K-order loss (Eq. 6): squared Frobenius distance between
/// the feature covariance matrices of source and target, scaled by 1/(4d^2).
/// Covariances use the (n-1) normalizer of DeepCORAL and centered features.
Tensor CoralLoss(const Tensor& xs, const Tensor& xt);

/// \brief Central Moment Discrepancy (Zellinger et al., cited by the paper
/// as the higher-order-moment discrepancy family) — a design-space
/// EXTENSION beyond the paper's six aligners:
///   CMD = ||mean_s - mean_t||_2 + sum_{k=2..K} ||c_k(s) - c_k(t)||_2,
/// where c_k is the k-th central moment per feature dimension. Built by
/// composing primitive autograd ops, so its gradient is covered by the
/// per-op numeric gradient checks.
Tensor CmdLoss(const Tensor& xs, const Tensor& xt, int max_moment = 3);

}  // namespace dader::ops
