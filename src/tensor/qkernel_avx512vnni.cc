// AVX-512VNNI int8 GEMM kernel: one `vpdpbusd` per 16-column quad.
//
// dpbusd multiplies four u8 x s8 byte pairs per int32 lane and accumulates
// the widened sum directly into the lane — the whole maddubs/madd/add
// sequence of the acc16 path collapses into a single instruction with no
// intermediate s16, so this kernel is exact for any operand values and
// registers as both the fast and the exact kernel (fast_is_exact). Uses
// the same 16x4 quad pack layout as qkernel_avx512.cc's fast kernel.
//
// Never registered with the dispatch ladder directly: qkernel_avx512.cc
// folds these pointers into the AVX-512 table after a runtime
// HostSupportsVnni() probe, so a BW-only host still gets the maddubs tier.

#include "tensor/gemm_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)

#include <immintrin.h>

#include <cstdint>
#include <vector>

namespace dader::cpu::internal {

namespace {

thread_local std::vector<int8_t> t_bpack;

// Same layout as qkernel_avx512.cc's PackQuads (separate anonymous copy —
// the TUs must stay independently compilable with their own ISA flags).
int8_t* PackQuads(int64_t n, int64_t k, const int8_t* b, int64_t* nblocks,
                  int64_t* nquads) {
  *nblocks = (n + 15) / 16;
  *nquads = (k + 3) / 4;
  t_bpack.assign(static_cast<size_t>(*nblocks * *nquads * 64), 0);
  int8_t* bp = t_bpack.data();
  for (int64_t p = 0; p < k; ++p) {
    const int64_t q = p / 4, kk = p % 4;
    const int8_t* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) {
      bp[((q * *nblocks + j / 16) * 64) + (j % 16) * 4 + kk] = brow[j];
    }
  }
  return bp;
}

constexpr int kRows = 6;  // 6 independent dpbusd chains per column block

void QGemmVnni(int64_t m, int64_t n, int64_t k, const uint8_t* a, int64_t lda,
               const int8_t* b, int32_t* c) {
  int64_t nblocks = 0, nquads = 0;
  const int8_t* bp = PackQuads(n, k, b, &nblocks, &nquads);
  for (int64_t jb = 0; jb < nblocks; ++jb) {
    const int64_t j0 = jb * 16;
    const int64_t nr = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << nr) - 1u);
    const int8_t* bcol = bp + jb * 64;
    int64_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m512i acc[kRows];
      for (int r = 0; r < kRows; ++r) acc[r] = _mm512_setzero_si512();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m512i bv = _mm512_loadu_si512(bcol + q * nblocks * 64);
        for (int r = 0; r < kRows; ++r) {
          const __m512i av = _mm512_set1_epi32(
              *reinterpret_cast<const int32_t*>(a + (i + r) * lda + q * 4));
          acc[r] = _mm512_dpbusd_epi32(acc[r], av, bv);
        }
      }
      for (int r = 0; r < kRows; ++r) {
        _mm512_mask_storeu_epi32(c + (i + r) * n + j0, mask, acc[r]);
      }
    }
    for (; i < m; ++i) {
      __m512i acc = _mm512_setzero_si512();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m512i bv = _mm512_loadu_si512(bcol + q * nblocks * 64);
        const __m512i av = _mm512_set1_epi32(
            *reinterpret_cast<const int32_t*>(a + i * lda + q * 4));
        acc = _mm512_dpbusd_epi32(acc, av, bv);
      }
      _mm512_mask_storeu_epi32(c + i * n + j0, mask, acc);
    }
  }
}

const QGemmKernels kTable = {
    /*isa=*/Isa::kAvx512,
    /*exact=*/&QGemmVnni,
    /*fast=*/&QGemmVnni,
    /*fast_is_exact=*/true,
    /*direct=*/&QGemmVnni,
    /*direct_cutoff=*/0,
};

}  // namespace

const QGemmKernels* Avx512VnniQKernels() { return &kTable; }

}  // namespace dader::cpu::internal

#else  // !(__AVX512F__ && __AVX512BW__ && __AVX512VL__ && __AVX512VNNI__)

namespace dader::cpu::internal {
const QGemmKernels* Avx512VnniQKernels() { return nullptr; }
}  // namespace dader::cpu::internal

#endif
