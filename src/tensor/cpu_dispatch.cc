#include "tensor/cpu_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/gemm_kernels.h"
#include "util/check.h"
#include "util/logging.h"

namespace dader::cpu {

namespace {

// -1 = no override; otherwise the pinned Isa value. ForceIsa is a test
// hook, but the load sits on the GEMM hot path, so it is a relaxed atomic
// rather than a mutex.
std::atomic<int> g_forced{-1};

bool ProbeHost(Isa isa) {
  switch (isa) {
    case Isa::kPortable:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case Isa::kAvx2:
    case Isa::kAvx512:
      return false;
#endif
  }
  return false;
}

bool ProbeVnni() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512vnni") != 0;
#else
  return false;
#endif
}

bool ProbeAvx512Bw() {
#if defined(__x86_64__) || defined(__i386__)
  // The int8 512-bit kernels use BW byte/word ops and their VL (128-bit)
  // forms; every BW part ships VL, but probe both anyway.
  return __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

// Parses a DADER_CPU_ISA value; returns false on unrecognized text.
bool ParseIsa(const char* text, Isa* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "portable") == 0) {
    *out = Isa::kPortable;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

// Environment/probe resolution, computed once. ForceIsa bypasses this
// cache, so tests can flip tiers without re-exec.
Isa ResolveDefault() {
  Isa best = BestSupported();
  const char* env = std::getenv("DADER_CPU_ISA");
  if (env != nullptr && env[0] != '\0') {
    Isa wanted;
    if (!ParseIsa(env, &wanted)) {
      DADER_LOG(Warning) << "DADER_CPU_ISA=\"" << env
                      << "\" not one of portable|avx2|avx512; using "
                      << IsaName(best);
    } else if (static_cast<int>(wanted) > static_cast<int>(best)) {
      DADER_LOG(Warning) << "DADER_CPU_ISA=" << IsaName(wanted)
                      << " exceeds what this host/build supports; clamping to "
                      << IsaName(best);
    } else {
      return wanted;
    }
  }
  return best;
}

const GemmKernels* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return internal::Avx512Kernels();
    case Isa::kAvx2:
      return internal::Avx2Kernels();
    case Isa::kPortable:
      return internal::PortableKernels();
  }
  return nullptr;
}

// Registration-time sanity: the blocked driver sizes packing scratch and
// tail buffers from these fields and assumes even cache-block divisibility.
const GemmKernels* Validate(const GemmKernels* table) {
  if (table == nullptr) return nullptr;
  DADER_CHECK(table->mr > 0 && table->mr <= kMaxMr);
  DADER_CHECK(table->nr > 0 && table->nr <= kMaxNr);
  DADER_CHECK(table->mc % table->mr == 0);
  DADER_CHECK(table->nc % table->nr == 0);
  DADER_CHECK(table->microkernel != nullptr);
  DADER_CHECK(table->small_nn != nullptr && table->small_nt != nullptr &&
              table->small_tn != nullptr);
  return table;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kPortable:
      return "portable";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "?";
}

bool HostSupports(Isa isa) {
  static const bool avx2 = ProbeHost(Isa::kAvx2);
  static const bool avx512 = ProbeHost(Isa::kAvx512);
  switch (isa) {
    case Isa::kPortable:
      return true;
    case Isa::kAvx2:
      return avx2;
    case Isa::kAvx512:
      return avx512;
  }
  return false;
}

bool CompiledWith(Isa isa) { return TableFor(isa) != nullptr; }

Isa BestSupported() {
  static const Isa best = [] {
    for (Isa isa : {Isa::kAvx512, Isa::kAvx2}) {
      if (HostSupports(isa) && CompiledWith(isa)) return isa;
    }
    return Isa::kPortable;
  }();
  return best;
}

Isa ActiveIsa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa resolved = ResolveDefault();
  return resolved;
}

void ForceIsa(Isa isa) {
  Isa clamped = isa;
  if (static_cast<int>(clamped) > static_cast<int>(BestSupported())) {
    DADER_LOG(Warning) << "ForceIsa(" << IsaName(isa)
                    << ") unsupported on this host/build; clamping to "
                    << IsaName(BestSupported());
    clamped = BestSupported();
  }
  g_forced.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void ClearForcedIsa() { g_forced.store(-1, std::memory_order_relaxed); }

const GemmKernels& KernelsFor(Isa isa) {
  static const GemmKernels* portable = Validate(TableFor(Isa::kPortable));
  static const GemmKernels* avx2 = Validate(TableFor(Isa::kAvx2));
  static const GemmKernels* avx512 = Validate(TableFor(Isa::kAvx512));
  DADER_CHECK(portable != nullptr);
  const GemmKernels* table = portable;
  if (isa == Isa::kAvx512 && avx512 != nullptr && HostSupports(Isa::kAvx512)) {
    table = avx512;
  } else if (isa >= Isa::kAvx2 && avx2 != nullptr &&
             HostSupports(Isa::kAvx2)) {
    // An avx512 request on an avx2-only host/build degrades one step, not
    // all the way to portable.
    table = avx2;
  }
  return *table;
}

const GemmKernels& ActiveKernels() { return KernelsFor(ActiveIsa()); }

bool HostSupportsVnni() {
  static const bool vnni = ProbeVnni();
  return vnni;
}

bool HostSupportsAvx512Bw() {
  static const bool bw = ProbeAvx512Bw();
  return bw;
}

namespace {

// Int8 registration sanity — same role as Validate() for the fp32 tables.
const QGemmKernels* ValidateQ(const QGemmKernels* table) {
  if (table == nullptr) return nullptr;
  DADER_CHECK(table->exact != nullptr);
  DADER_CHECK(table->fast != nullptr);
  DADER_CHECK(table->direct != nullptr);
  DADER_CHECK(table->direct_cutoff >= 0);
  return table;
}

}  // namespace

const QGemmKernels& QKernelsFor(Isa isa) {
  static const QGemmKernels* portable = ValidateQ(internal::PortableQKernels());
  static const QGemmKernels* avx2 = ValidateQ(internal::Avx2QKernels());
  static const QGemmKernels* avx512 = ValidateQ(internal::Avx512QKernels());
  DADER_CHECK(portable != nullptr);
  const QGemmKernels* table = portable;
  // The 512-bit int8 kernels need the BW subset at runtime, not just F —
  // an F-only host degrades the int8 tier one step while fp32 stays at 512.
  if (isa == Isa::kAvx512 && avx512 != nullptr && HostSupports(Isa::kAvx512) &&
      HostSupportsAvx512Bw()) {
    table = avx512;
  } else if (isa >= Isa::kAvx2 && avx2 != nullptr &&
             HostSupports(Isa::kAvx2)) {
    table = avx2;
  }
  return *table;
}

const QGemmKernels& ActiveQKernels() { return QKernelsFor(ActiveIsa()); }

}  // namespace dader::cpu
