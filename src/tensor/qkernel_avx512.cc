// AVX-512 int8 GEMM tier: the AVX2 kernels at 16-lane width.
//
// Compiled with -mavx512f -mavx512bw -mavx512vl (the byte/word instructions
// and their 128-bit forms live outside AVX-512F; cpu_dispatch degrades an
// F-only host's int8 tier to AVX2 while its fp32 tier stays at 512). See
// qkernel_avx2.cc for the kernel design commentary — only the differences
// are noted here:
//
//   * Column blocks are 16 wide (one zmm of int32 accumulators); edge
//     columns use real lane masks (__mmask16) instead of the AVX2
//     sign-bit-vector workaround, on loads and stores both.
//   * When the host also supports AVX-512VNNI, Avx512QKernels() swaps the
//     fast/exact pair for the `vpdpbusd` kernel from qkernel_avx512vnni.cc
//     at first use: dpbusd widens u8*s8 products to int32 internally, so
//     there is no acc16 saturation hazard and fast_is_exact holds. The
//     direct small-problem kernel stays the madd form either way.

#include "tensor/gemm_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <cstdint>
#include <vector>

namespace dader::cpu::internal {

namespace {

thread_local std::vector<int8_t> t_bpack;

// B[k,n] -> 64-byte groups of 16 columns x 4 consecutive k (byte jj*4 + kk
// of group (q, jb) holds B[4q+kk, 16jb+jj]), zero-padded both ways.
int8_t* PackQuads(int64_t n, int64_t k, const int8_t* b, int64_t* nblocks,
                  int64_t* nquads) {
  *nblocks = (n + 15) / 16;
  *nquads = (k + 3) / 4;
  t_bpack.assign(static_cast<size_t>(*nblocks * *nquads * 64), 0);
  int8_t* bp = t_bpack.data();
  for (int64_t p = 0; p < k; ++p) {
    const int64_t q = p / 4, kk = p % 4;
    const int8_t* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) {
      bp[((q * *nblocks + j / 16) * 64) + (j % 16) * 4 + kk] = brow[j];
    }
  }
  return bp;
}

// 32-byte groups of 16 columns x 2 consecutive k (the exact kernel's
// layout); byte jj*2 + kk holds B[2p2+kk, 16jb+jj].
int8_t* PackPairs(int64_t n, int64_t k, const int8_t* b, int64_t* nblocks,
                  int64_t* npairs) {
  *nblocks = (n + 15) / 16;
  *npairs = (k + 1) / 2;
  t_bpack.assign(static_cast<size_t>(*nblocks * *npairs * 32), 0);
  int8_t* bp = t_bpack.data();
  for (int64_t p = 0; p < k; ++p) {
    const int64_t p2 = p / 2, kk = p % 2;
    const int8_t* brow = b + p * n;
    for (int64_t j = 0; j < n; ++j) {
      bp[((p2 * *nblocks + j / 16) * 32) + (j % 16) * 2 + kk] = brow[j];
    }
  }
  return bp;
}

constexpr int kRows = 6;

void QGemmFastAvx512(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                     int64_t lda, const int8_t* b, int32_t* c) {
  int64_t nblocks = 0, nquads = 0;
  const int8_t* bp = PackQuads(n, k, b, &nblocks, &nquads);
  const __m512i ones = _mm512_set1_epi16(1);
  for (int64_t jb = 0; jb < nblocks; ++jb) {
    const int64_t j0 = jb * 16;
    const int64_t nr = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << nr) - 1u);
    const int8_t* bcol = bp + jb * 64;
    int64_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m512i acc[kRows];
      for (int r = 0; r < kRows; ++r) acc[r] = _mm512_setzero_si512();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m512i bv = _mm512_loadu_si512(bcol + q * nblocks * 64);
        for (int r = 0; r < kRows; ++r) {
          const __m512i av = _mm512_set1_epi32(
              *reinterpret_cast<const int32_t*>(a + (i + r) * lda + q * 4));
          acc[r] = _mm512_add_epi32(
              acc[r],
              _mm512_madd_epi16(_mm512_maddubs_epi16(av, bv), ones));
        }
      }
      for (int r = 0; r < kRows; ++r) {
        _mm512_mask_storeu_epi32(c + (i + r) * n + j0, mask, acc[r]);
      }
    }
    for (; i < m; ++i) {
      __m512i acc = _mm512_setzero_si512();
      for (int64_t q = 0; q < nquads; ++q) {
        const __m512i bv = _mm512_loadu_si512(bcol + q * nblocks * 64);
        const __m512i av = _mm512_set1_epi32(
            *reinterpret_cast<const int32_t*>(a + i * lda + q * 4));
        acc = _mm512_add_epi32(
            acc, _mm512_madd_epi16(_mm512_maddubs_epi16(av, bv), ones));
      }
      _mm512_mask_storeu_epi32(c + i * n + j0, mask, acc);
    }
  }
}

void QGemmExactAvx512(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                      int64_t lda, const int8_t* b, int32_t* c) {
  int64_t nblocks = 0, npairs = 0;
  const int8_t* bp = PackPairs(n, k, b, &nblocks, &npairs);
  for (int64_t jb = 0; jb < nblocks; ++jb) {
    const int64_t j0 = jb * 16;
    const int64_t nr = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << nr) - 1u);
    const int8_t* bcol = bp + jb * 32;
    int64_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m512i acc[kRows];
      for (int r = 0; r < kRows; ++r) acc[r] = _mm512_setzero_si512();
      for (int64_t p2 = 0; p2 < npairs; ++p2) {
        const __m512i bv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bcol + p2 * nblocks * 32)));
        for (int r = 0; r < kRows; ++r) {
          const uint8_t* ap = a + (i + r) * lda + p2 * 2;
          const __m512i av = _mm512_set1_epi32(
              static_cast<int32_t>(ap[0]) |
              (static_cast<int32_t>(ap[1]) << 16));
          acc[r] = _mm512_add_epi32(acc[r], _mm512_madd_epi16(av, bv));
        }
      }
      for (int r = 0; r < kRows; ++r) {
        _mm512_mask_storeu_epi32(c + (i + r) * n + j0, mask, acc[r]);
      }
    }
    for (; i < m; ++i) {
      __m512i acc = _mm512_setzero_si512();
      for (int64_t p2 = 0; p2 < npairs; ++p2) {
        const __m512i bv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bcol + p2 * nblocks * 32)));
        const uint8_t* ap = a + i * lda + p2 * 2;
        const __m512i av =
            _mm512_set1_epi32(static_cast<int32_t>(ap[0]) |
                              (static_cast<int32_t>(ap[1]) << 16));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, bv));
      }
      _mm512_mask_storeu_epi32(c + i * n + j0, mask, acc);
    }
  }
}

// Unpacked small-problem kernel; masked 128-bit byte loads make B row
// tails safe (no overrun on the last row), so the whole n range is
// vectorized.
void QGemmDirectAvx512(int64_t m, int64_t n, int64_t k, const uint8_t* a,
                       int64_t lda, const int8_t* b, int32_t* c) {
  for (int64_t j0 = 0; j0 < n; j0 += 16) {
    const int64_t nr = n - j0 < 16 ? n - j0 : 16;
    const __mmask16 mask = static_cast<__mmask16>((1u << nr) - 1u);
    for (int64_t i = 0; i < m; ++i) {
      const uint8_t* arow = a + i * lda;
      __m512i acc = _mm512_setzero_si512();
      for (int64_t p = 0; p < k; p += 2) {
        const __m128i b0 = _mm_maskz_loadu_epi8(mask, b + p * n + j0);
        const __m128i b1 = p + 1 < k
                               ? _mm_maskz_loadu_epi8(mask, b + (p + 1) * n + j0)
                               : _mm_setzero_si128();
        const __m256i bi = _mm256_set_m128i(_mm_unpackhi_epi8(b0, b1),
                                            _mm_unpacklo_epi8(b0, b1));
        const __m512i bv = _mm512_cvtepi8_epi16(bi);
        // arow is zero-padded past k (kQGemmKPad), so an odd trailing pair
        // reads a 0 for its second activation.
        const __m512i av = _mm512_set1_epi32(
            static_cast<int32_t>(arow[p]) |
            (static_cast<int32_t>(p + 1 < lda ? arow[p + 1] : 0) << 16));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, bv));
      }
      _mm512_mask_storeu_epi32(c + i * n + j0, mask, acc);
    }
  }
}

const QGemmKernels kBaseTable = {
    /*isa=*/Isa::kAvx512,
    /*exact=*/&QGemmExactAvx512,
    /*fast=*/&QGemmFastAvx512,
    /*fast_is_exact=*/false,
    /*direct=*/&QGemmDirectAvx512,
    /*direct_cutoff=*/16'384,
};

}  // namespace

const QGemmKernels* Avx512QKernels() {
  static const QGemmKernels table = [] {
    QGemmKernels t = kBaseTable;
    const QGemmKernels* vnni = Avx512VnniQKernels();
    if (vnni != nullptr && HostSupportsVnni()) {
      t.exact = vnni->exact;
      t.fast = vnni->fast;
      t.fast_is_exact = true;
    }
    return t;
  }();
  return &table;
}

}  // namespace dader::cpu::internal

#else  // !(__AVX512F__ && __AVX512BW__ && __AVX512VL__)

namespace dader::cpu::internal {
const QGemmKernels* Avx512QKernels() { return nullptr; }
}  // namespace dader::cpu::internal

#endif
