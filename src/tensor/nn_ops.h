// Neural-network-specific differentiable operations: softmax family,
// layer normalization, embedding lookup, dropout, gradient reversal, and
// classification losses.
//
// The gradient reversal op implements the GRL feature aligner of the paper
// (Ganin et al.): identity in the forward pass, multiply-by-(-lambda) in the
// backward pass.

#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dader::ops {

/// \brief Softmax over the last dimension (numerically stabilized).
Tensor Softmax(const Tensor& a);

/// \brief Log-softmax over the last dimension.
Tensor LogSoftmax(const Tensor& a);

/// \brief Layer normalization over the last dimension with learnable scale
/// `gamma` {d} and shift `beta` {d}.
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// \brief Gathers rows of `weight` [V,d] for each id; output [ids.size(), d].
/// Ids must lie in [0, V). Backward scatters into the embedding table.
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int64_t>& ids);

/// \brief Inverted dropout: when `training`, zeroes entries with probability
/// p and scales survivors by 1/(1-p); identity otherwise.
Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training);

/// \brief Gradient reversal layer: forward identity, backward multiplies the
/// incoming gradient by -lambda.
Tensor GradReverse(const Tensor& a, float lambda);

/// \brief Mean cross-entropy between softmax(logits) [n,C] and integer
/// labels (each in [0,C)). This is the matching loss L_M of Eq. (4).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels);

/// \brief Mean binary cross-entropy between sigmoid(logits) [n] or [n,1]
/// and float targets in [0,1]. This realizes the adversarial domain losses
/// of Eqs. (8)-(11) and (13) with a domain-classifier head.
Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& targets);

/// \brief Knowledge-distillation loss (Hinton et al.), Eq. (12):
///   t^2 * mean_i CE(softmax(teacher_i / t), log_softmax(student_i / t)).
/// Teacher logits are treated as constants (no gradient flows into them).
Tensor KnowledgeDistillationLoss(const Tensor& student_logits,
                                 const Tensor& teacher_logits,
                                 float temperature);

/// \brief Mean squared error between two same-shaped tensors.
Tensor MseLoss(const Tensor& a, const Tensor& b);

/// \brief Reconstruction loss for the ED feature aligner (Eq. 15,
/// simplified): each feature row b must predict the bag of tokens of its
/// input sequence through shared logits [B,V]:
///   L = mean over all (b, tok in bags[b]) of -log softmax(logits_b)[tok].
/// Rows with empty bags contribute nothing.
Tensor BagOfTokensCrossEntropy(const Tensor& logits,
                               const std::vector<std::vector<int64_t>>& bags);

}  // namespace dader::ops
