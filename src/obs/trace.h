// Span-based tracing with RAII scopes and deterministic export.
//
// A TraceSpan marks one timed phase (an epoch, a served batch, a model
// reload). Spans nest via a thread-local depth counter, finish in the
// destructor, and land in the owning Tracer's fixed-capacity ring buffer —
// when the ring is full the oldest span is overwritten and `dropped()`
// counts it, so tracing can stay on in long-running processes with bounded
// memory.
//
// Two clocks:
//
//   * kWall    — steady_clock microseconds (production; durations are real).
//   * kLogical — an atomic tick counter: every timestamp read returns the
//                next integer. Start/end order is preserved, durations count
//                intervening clock reads, and the export is bit-identical
//                across runs — this is the "no wall-clock in test mode"
//                rule that keeps golden trace files stable.
//
// Span names must be string literals (or otherwise outlive the Tracer):
// records store the pointer, keeping the hot path allocation-free.
//
// Export (JSON lines / CSV) is sorted by completion order and contains no
// wall-clock-derived fields beyond the span times themselves.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dader::obs {

/// \brief Timestamp source of a Tracer (see file comment).
enum class ClockMode { kWall, kLogical };

/// \brief One finished span.
struct SpanRecord {
  const char* name = "";
  uint64_t start_us = 0;  ///< ticks in kLogical mode
  uint64_t end_us = 0;
  uint32_t thread = 0;    ///< small per-thread ordinal (0 in kLogical mode)
  uint32_t depth = 0;     ///< nesting depth at the time the span opened
};

/// \brief Bounded collector of finished spans.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  /// \brief Process-wide tracer all built-in instrumentation uses.
  static Tracer& Default();

  /// \brief Tracing toggle; a disabled tracer makes TraceSpan construction
  /// two relaxed atomic loads and nothing else.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_clock_mode(ClockMode mode) {
    clock_mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  }
  ClockMode clock_mode() const {
    return static_cast<ClockMode>(
        clock_mode_.load(std::memory_order_relaxed));
  }

  /// \brief Current timestamp in the active clock mode.
  uint64_t NowUs();

  /// \brief Appends a finished span (TraceSpan calls this).
  void Record(const SpanRecord& record);

  /// \brief Completed spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// \brief Spans overwritten because the ring was full.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// \brief Total spans ever recorded (including dropped ones).
  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// \brief Empties the ring, zeroes counters, and restarts the logical
  /// clock (tests).
  void Clear();

  /// \brief `{"span":...,"thread":...,"depth":...,"start_us":...,
  /// "dur_us":...}` per line, oldest first.
  std::string ToJsonLines() const;

  /// \brief `span,thread,depth,start_us,dur_us` CSV, oldest first.
  std::string ToCsv() const;

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<int> clock_mode_{static_cast<int>(ClockMode::kWall)};
  std::atomic<uint64_t> logical_clock_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> recorded_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // fixed capacity, allocated up front
  size_t capacity_;
  size_t next_ = 0;    // ring write index
  size_t size_ = 0;    // spans currently held
};

/// \brief RAII span scope; see Tracer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Tracer* tracer = &Tracer::Default());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;  // null when tracing was disabled at construction
  const char* name_;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
};

#define DADER_TRACE_CONCAT_INNER(a, b) a##b
#define DADER_TRACE_CONCAT(a, b) DADER_TRACE_CONCAT_INNER(a, b)

/// \brief Scoped span on the default tracer: DADER_TRACE_SPAN("serve.batch").
#define DADER_TRACE_SPAN(name)                 \
  ::dader::obs::TraceSpan DADER_TRACE_CONCAT(  \
      dader_trace_span_, __COUNTER__)(name)

}  // namespace dader::obs
