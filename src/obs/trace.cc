#include "obs/trace.h"

#include <chrono>
#include <sstream>

namespace dader::obs {

namespace {

// Small stable per-thread ordinal for wall-mode span records (real thread
// ids are large, non-deterministic, and reused by the OS).
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal = next.fetch_add(1);
  return ordinal;
}

// Nesting depth of open spans on this thread.
thread_local uint32_t t_span_depth = 0;

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

uint64_t Tracer::NowUs() {
  if (clock_mode() == ClockMode::kLogical) {
    return logical_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::Record(const SpanRecord& record) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++size_;
  }
  ring_[next_] = record;
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  const size_t first = (next_ + capacity_ - size_) % capacity_;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  size_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  logical_clock_.store(0, std::memory_order_relaxed);
}

std::string Tracer::ToJsonLines() const {
  std::ostringstream out;
  for (const SpanRecord& s : Snapshot()) {
    out << "{\"span\":\"" << s.name << "\",\"thread\":" << s.thread
        << ",\"depth\":" << s.depth << ",\"start_us\":" << s.start_us
        << ",\"dur_us\":" << (s.end_us - s.start_us) << "}\n";
  }
  return out.str();
}

std::string Tracer::ToCsv() const {
  std::ostringstream out;
  out << "span,thread,depth,start_us,dur_us\n";
  for (const SpanRecord& s : Snapshot()) {
    out << s.name << "," << s.thread << "," << s.depth << "," << s.start_us
        << "," << (s.end_us - s.start_us) << "\n";
  }
  return out.str();
}

TraceSpan::TraceSpan(const char* name, Tracer* tracer)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      name_(name) {
  if (tracer_ == nullptr) return;
  depth_ = t_span_depth++;
  start_us_ = tracer_->NowUs();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.end_us = tracer_->NowUs();
  record.thread =
      tracer_->clock_mode() == ClockMode::kLogical ? 0 : ThreadOrdinal();
  record.depth = depth_;
  --t_span_depth;
  tracer_->Record(record);
}

}  // namespace dader::obs
