// Minimal embedded HTTP listener serving the Prometheus text scrape.
//
// One background thread accepts loopback connections and answers
// `GET /metrics` with MetricsRegistry::Default().ScrapeText(); every other
// path is a 404. This is deliberately not a web server: one request per
// connection, no keep-alive, no TLS, bounded request read — just enough
// protocol for `curl http://127.0.0.1:<port>/metrics` and a Prometheus
// scrape job. Binds 127.0.0.1 only; exposing process metrics beyond the
// host is a deployment decision this layer refuses to make.
//
// Lifecycle: Start() binds + spawns the accept loop (port 0 picks an
// ephemeral port, see port()); Stop() closes the listen socket, which
// unblocks accept(), and joins the thread. Stop() is idempotent and runs
// in the destructor.

#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace dader::obs {

/// \brief Background /metrics HTTP endpoint (see file comment).
class HttpMetricsExporter {
 public:
  /// Produces the scrape body; the default is
  /// MetricsRegistry::Default().ScrapeText().
  using ScrapeHandler = std::function<std::string()>;

  HttpMetricsExporter() = default;
  ~HttpMetricsExporter();

  HttpMetricsExporter(const HttpMetricsExporter&) = delete;
  HttpMetricsExporter& operator=(const HttpMetricsExporter&) = delete;

  /// \brief Replaces the scrape body producer (call before Start()). A
  /// handler that throws is answered with 503 + the exception text in the
  /// body — never a silently dropped connection, which scrapers would
  /// misread as a network problem rather than an application one.
  void set_scrape_handler(ScrapeHandler handler) {
    handler_ = std::move(handler);
  }

  /// \brief Binds 127.0.0.1:port (0 = ephemeral) and starts the accept
  /// loop. Fails on bind errors or when already started.
  Status Start(int port);

  /// \brief Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  /// \brief The bound port; meaningful after a successful Start().
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  // Runs on thread_ with its own copy of the listen fd (the member is
  // Stop()'s to rewrite).
  void AcceptLoop(int listen_fd);

  int listen_fd_ = -1;
  int port_ = 0;
  ScrapeHandler handler_;  // null = registry scrape; set before Start()
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace dader::obs
