#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dader::obs {

namespace {

// Blocking full-buffer send; a scrape body is small enough that partial
// writes are the only case worth handling.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const std::string& status_line,
                         const std::string& content_type,
                         const std::string& body) {
  return "HTTP/1.1 " + status_line +
         "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

HttpMetricsExporter::~HttpMetricsExporter() { Stop(); }

Status HttpMetricsExporter::Start(int port) {
  if (running_.load()) {
    return Status::InvalidArgument("metrics exporter already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("bind to 127.0.0.1:" + std::to_string(port) +
                           " failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError("listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IOError("getsockname failed");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_ = fd;
  running_.store(true);
  // The loop gets its own copy of the fd: the thread must never read the
  // member, which Stop() rewrites from another thread.
  thread_ = std::thread([this, fd] { AcceptLoop(fd); });
  DADER_LOG(Info) << "metrics exporter listening on http://127.0.0.1:"
                  << port_ << "/metrics";
  return Status::OK();
}

void HttpMetricsExporter::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  // shutdown() unblocks the accept() in flight; close() releases the port.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;  // after the join: the loop holds its own fd copy anyway
}

void HttpMetricsExporter::AcceptLoop(int listen_fd) {
  while (running_.load()) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) return;  // Stop() closed the socket
      continue;                      // transient (EINTR etc.)
    }
    // Read at most one small request head; we only need the request line.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string head(buf, n > 0 ? static_cast<size_t>(n) : 0);
    const bool is_get = head.rfind("GET ", 0) == 0;
    const size_t path_end = head.find(' ', 4);
    const std::string path =
        is_get && path_end != std::string::npos ? head.substr(4, path_end - 4)
                                                : "";
    if (is_get && path == "/metrics") {
      // A throwing scrape handler must produce an HTTP error, not a dropped
      // connection: scrapers distinguish "target broken" (503) from "target
      // unreachable" (connect/reset), and a silent close reports the wrong
      // one.
      std::string body;
      bool scrape_ok = true;
      try {
        body = handler_ ? handler_() : MetricsRegistry::Default().ScrapeText();
      } catch (const std::exception& e) {
        scrape_ok = false;
        body = std::string("scrape handler failed: ") + e.what() + "\n";
      } catch (...) {
        scrape_ok = false;
        body = "scrape handler failed: unknown exception\n";
      }
      SendAll(client,
              scrape_ok
                  ? HttpResponse("200 OK", "text/plain; version=0.0.4", body)
                  : HttpResponse("503 Service Unavailable", "text/plain",
                                 body));
    } else {
      SendAll(client, HttpResponse("404 Not Found", "text/plain",
                                   "only GET /metrics is served\n"));
    }
    ::close(client);
  }
}

}  // namespace dader::obs
