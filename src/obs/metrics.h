// Lock-cheap metrics for the training and serving hot paths.
//
// Four metric kinds, all thread-safe and allocation-free once registered:
//
//   * Counter        — monotonic int64; one relaxed fetch_add per event.
//   * Gauge          — last-written double; one relaxed store per update.
//   * QuantileSketch — DDSketch-style log-bucketed value sketch with a
//                      provable relative-error bound: Quantile(q) is within
//                      a factor (1 +/- alpha) of the true quantile for any
//                      value inside [min_value, max_value]. Fixed bucket
//                      array of atomics; Observe is a clamp + fetch_add.
//   * Histogram      — fixed explicit bucket bounds (Prometheus-style
//                      cumulative export) plus an embedded QuantileSketch,
//                      so Quantile(q) is accuracy-bounded rather than
//                      interpolated from the coarse export buckets.
//
// MetricsRegistry owns every metric by name. Registration (GetCounter etc.)
// takes a mutex and may allocate; call sites fetch pointers once and reuse
// them — updates through the returned pointers never lock or allocate.
// Label series are encoded in the metric name, Prometheus style:
// `train.guard.verdicts.total{verdict="healthy"}` (see LabeledName); each
// full string is its own series.
//
// Export is deterministic by construction: metrics are emitted in sorted
// name order and no export format contains a timestamp, so seeded runs
// produce stable goldens (histogram *values* are only as deterministic as
// what was observed — CsvOptions::deterministic_only drops the
// timing-derived fields for golden files). See docs/OBSERVABILITY.md for
// the catalogue of every metric this repo emits.
//
// Layering: this library depends only on the standard library (plus the
// header-only util/check.h), so even util/thread_pool.cc can use it.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/check.h"

namespace dader::obs {

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t n) {
    DADER_DCHECK(n >= 0);
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-written instantaneous value (loss, queue depth, F1, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Log-bucketed quantile sketch (the DDSketch construction).
///
/// Buckets are powers of gamma = (1+alpha)/(1-alpha) over
/// [min_value, max_value]; a value's bucket midpoint (geometric) is within
/// relative error alpha of the value itself, so any quantile estimate
/// carries the same bound. Values below min_value (including zero and
/// negatives) clamp into the bottom bucket, values above max_value into the
/// top one — both are counted, just without the relative bound.
class QuantileSketch {
 public:
  explicit QuantileSketch(double alpha = 0.01, double min_value = 1e-4,
                          double max_value = 1e8);

  void Observe(double value);

  /// \brief Estimated q-quantile (q in [0,1]); 0 when empty.
  double Quantile(double q) const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double alpha() const { return alpha_; }
  void Reset();

 private:
  double alpha_;
  double min_value_;
  double log_gamma_;       // ln((1+alpha)/(1-alpha))
  double gamma_;
  size_t num_buckets_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Fixed-bound histogram with accuracy-bounded quantiles.
class Histogram {
 public:
  /// \param bounds strictly increasing upper bucket bounds; an implicit
  ///   +Inf bucket is appended. Empty uses DefaultLatencyBoundsMs().
  explicit Histogram(std::vector<double> bounds = {});

  /// \brief The default bounds, tuned for millisecond latencies.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// \brief Accuracy-bounded quantile from the embedded sketch.
  double Quantile(double q) const { return sketch_.Quantile(q); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// \brief Non-cumulative count of bucket i (i == bounds().size() is the
  /// +Inf overflow bucket).
  int64_t bucket_count(size_t i) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  QuantileSketch sketch_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// \brief "counter", "gauge", "histogram".
const char* MetricTypeName(MetricType type);

/// \brief `base{key="value"}` — one label series of a base metric.
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);

/// \brief Options of ToCsv().
struct CsvOptions {
  /// Drop fields whose values depend on wall-clock timing (histogram sum and
  /// quantiles), keeping only event counts — for goldens of seeded runs.
  bool deterministic_only = false;
};

/// \brief Thread-safe name -> metric store with text export.
class MetricsRegistry {
 public:
  /// \brief Process-wide registry all built-in instrumentation uses.
  static MetricsRegistry& Default();

  /// \brief Returns the counter registered under `name`, creating it on
  /// first use. `help`/`unit` are recorded on creation and aborts on a kind
  /// conflict (a name can only ever be one metric kind).
  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const std::string& unit = "",
                          std::vector<double> bounds = {});

  /// \brief Sorted names of every registered metric (label suffix included).
  std::vector<std::string> Names() const;

  /// \brief Prometheus text exposition format (dots become underscores,
  /// label suffixes pass through). Sorted; no timestamps. A future HTTP
  /// layer serves this string verbatim as /metrics.
  std::string ScrapeText() const;

  /// \brief One JSON object per line per metric. Sorted; no timestamps.
  std::string ToJsonLines() const;

  /// \brief `metric,type,field,value` CSV snapshot. Sorted; no timestamps.
  std::string ToCsv(const CsvOptions& options = {}) const;

  /// \brief Zeroes every registered metric (tests and benches; the metric
  /// pointers handed out remain valid).
  void ResetAllForTest();

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, MetricType type,
                     const std::string& help, const std::string& unit,
                     std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// \brief Writes `content` to `path`; false (with the reason in *error when
/// non-null) on failure. Lets benches dump exports without linking util IO.
bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error = nullptr);

}  // namespace dader::obs
