#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dader::obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

// "%g"-style shortest-ish representation that is locale-independent and
// stable across runs (printf with %.17g round-trips but is noisy; %.9g is
// plenty for metric values).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// `serve.latency.total_ms{stage="queue"}` -> base `serve.latency.total_ms`,
// labels `{stage="queue"}` ("" when unlabeled).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

// Prometheus metric names allow [a-zA-Z0-9_:]; this repo's dotted names map
// onto that by replacing every other character with '_'.
std::string PrometheusName(const std::string& base) {
  std::string out = base;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- sketch --

QuantileSketch::QuantileSketch(double alpha, double min_value,
                               double max_value)
    : alpha_(alpha), min_value_(min_value) {
  DADER_CHECK(alpha > 0.0 && alpha < 1.0);
  DADER_CHECK(min_value > 0.0 && max_value > min_value);
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  log_gamma_ = std::log(gamma_);
  num_buckets_ = static_cast<size_t>(
                     std::ceil(std::log(max_value / min_value) / log_gamma_)) +
                 2;  // +1 for the bottom bucket, +1 for overflow
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(num_buckets_);
  for (size_t i = 0; i < num_buckets_; ++i) buckets_[i].store(0);
}

void QuantileSketch::Observe(double value) {
  size_t idx = 0;
  if (std::isfinite(value) && value > min_value_) {
    const double raw = std::ceil(std::log(value / min_value_) / log_gamma_);
    idx = std::min(num_buckets_ - 1, static_cast<size_t>(std::max(0.0, raw)));
  } else if (!(value <= min_value_)) {
    idx = num_buckets_ - 1;  // NaN/+Inf land in the overflow bucket
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, std::isfinite(value) ? value : 0.0);
}

double QuantileSketch::Quantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const int64_t rank = static_cast<int64_t>(q * static_cast<double>(total - 1));
  int64_t cum = 0;
  for (size_t i = 0; i < num_buckets_; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum > rank) {
      if (i == 0) return min_value_;
      // Geometric midpoint of (min*gamma^(i-1), min*gamma^i]: within a
      // factor (1 +/- alpha) of every value the bucket can hold.
      return min_value_ * std::pow(gamma_, static_cast<double>(i)) * 2.0 /
             (1.0 + gamma_);
    }
  }
  return min_value_ * std::pow(gamma_, static_cast<double>(num_buckets_ - 1));
}

double QuantileSketch::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

void QuantileSketch::Reset() {
  for (size_t i = 0; i < num_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------------- histogram --

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds = {
      0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBoundsMs() : std::move(bounds)) {
  DADER_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  DADER_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
              bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // lower_bound, not upper_bound: bucket i holds values <= bounds_[i],
  // matching the `le` semantics of the cumulative Prometheus export.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, std::isfinite(value) ? value : 0.0);
  sketch_.Observe(value);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

int64_t Histogram::bucket_count(size_t i) const {
  DADER_DCHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  sketch_.Reset();
}

// -------------------------------------------------------------- registry --

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(
    const std::string& name, MetricType type, const std::string& help,
    const std::string& unit, std::vector<double>* bounds) {
  DADER_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    DADER_CHECK_MSG(it->second.type == type,
                    "metric re-registered with a different kind");
    return &it->second;
  }
  Entry entry;
  entry.type = type;
  entry.help = help;
  entry.unit = unit;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>(
          bounds != nullptr ? std::move(*bounds) : std::vector<double>{});
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& unit) {
  return GetOrCreate(name, MetricType::kCounter, help, unit, nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& unit) {
  return GetOrCreate(name, MetricType::kGauge, help, unit, nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::string& unit,
                                         std::vector<double> bounds) {
  return GetOrCreate(name, MetricType::kHistogram, help, unit, &bounds)
      ->histogram.get();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::string MetricsRegistry::ScrapeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  std::string last_base;  // HELP/TYPE once per base across label series
  for (const auto& [name, entry] : entries_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    const std::string prom = PrometheusName(base);
    if (base != last_base) {
      if (!entry.help.empty()) {
        out << "# HELP " << prom << " " << entry.help;
        if (!entry.unit.empty()) out << " (" << entry.unit << ")";
        out << "\n";
      }
      out << "# TYPE " << prom << " " << MetricTypeName(entry.type) << "\n";
      last_base = base;
    }
    switch (entry.type) {
      case MetricType::kCounter:
        out << prom << labels << " " << entry.counter->value() << "\n";
        break;
      case MetricType::kGauge:
        out << prom << labels << " " << FormatDouble(entry.gauge->value())
            << "\n";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        // Prometheus histograms are unlabeled-series only in this repo; a
        // labeled histogram name would need label merging here.
        int64_t cum = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_count(i);
          out << prom << "_bucket{le=\"" << FormatDouble(h.bounds()[i])
              << "\"} " << cum << "\n";
        }
        cum += h.bucket_count(h.bounds().size());
        out << prom << "_bucket{le=\"+Inf\"} " << cum << "\n";
        out << prom << "_sum " << FormatDouble(h.sum()) << "\n";
        out << prom << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"type\":\""
        << MetricTypeName(entry.type) << "\"";
    if (!entry.unit.empty()) out << ",\"unit\":\"" << JsonEscape(entry.unit) << "\"";
    switch (entry.type) {
      case MetricType::kCounter:
        out << ",\"value\":" << entry.counter->value();
        break;
      case MetricType::kGauge:
        out << ",\"value\":" << FormatDouble(entry.gauge->value());
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << ",\"count\":" << h.count() << ",\"sum\":"
            << FormatDouble(h.sum())
            << ",\"p50\":" << FormatDouble(h.Quantile(0.5))
            << ",\"p95\":" << FormatDouble(h.Quantile(0.95))
            << ",\"p99\":" << FormatDouble(h.Quantile(0.99));
        break;
      }
    }
    out << "}\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToCsv(const CsvOptions& options) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "metric,type,field,value\n";
  for (const auto& [name, entry] : entries_) {
    // Metric names can hold label strings with commas/quotes; CSV-quote them.
    std::string quoted;
    quoted.reserve(name.size() + 2);
    quoted.push_back('"');
    for (char c : name) {
      if (c == '"') quoted.push_back('"');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    switch (entry.type) {
      case MetricType::kCounter:
        out << quoted << ",counter,value," << entry.counter->value() << "\n";
        break;
      case MetricType::kGauge:
        out << quoted << ",gauge,value,"
            << FormatDouble(entry.gauge->value()) << "\n";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << quoted << ",histogram,count," << h.count() << "\n";
        if (!options.deterministic_only) {
          out << quoted << ",histogram,sum," << FormatDouble(h.sum()) << "\n";
          out << quoted << ",histogram,p50," << FormatDouble(h.Quantile(0.5))
              << "\n";
          out << quoted << ",histogram,p95," << FormatDouble(h.Quantile(0.95))
              << "\n";
          out << quoted << ",histogram,p99," << FormatDouble(h.Quantile(0.99))
              << "\n";
        }
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace dader::obs
