// Profiling hooks: RAII latency capture into a Histogram, optionally with a
// trace span over the same scope.
//
//   static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
//       "serve.latency.forward_ms", "primary forward pass", "ms");
//   {
//     obs::ScopedLatency timing(h, "serve.forward.primary");
//     ... the measured work ...
//   }   // <- histogram observation (and span finish) happen here
//
// The measured duration always comes from the steady clock — latency values
// must be real even when the Tracer runs its deterministic logical clock —
// so histogram *contents* are only as reproducible as the machine, while
// counts are exact. Exports that must be golden-stable use
// CsvOptions::deterministic_only (see obs/metrics.h).

#pragma once

#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dader::obs {

/// \brief Observes the scope's wall duration (ms) into a histogram on exit;
/// with a span name, also traces the scope.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram,
                         const char* span_name = nullptr)
      : histogram_(histogram), start_(Clock::now()) {
    if (span_name != nullptr) span_.emplace(span_name);
  }

  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          std::chrono::duration<double, std::milli>(Clock::now() - start_)
              .count());
    }
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
  std::optional<TraceSpan> span_;  // destroyed (finished) before the observe
};

}  // namespace dader::obs
