// Blocking-key tokenization: the shared normalization under both candidate
// generators (inverted index and MinHash — src/block/inverted_index.h,
// src/block/minhash.h).
//
// Records are reduced to a deduplicated set of normalized tokens: every
// attribute value is lower-cased and word-tokenized exactly like the
// extractor's hashing vocabulary (text::WordTokenize), then filtered so
// that no empty, whitespace-only, or bare-punctuation fragment ever
// becomes a blocking key. This matters at the edges: NULL attributes are
// empty strings in this codebase (data/schema.h), and a record whose
// attributes are all NULL/whitespace must produce *zero* tokens — an
// empty-token posting list would otherwise glue every sparse record into
// one giant candidate block.
//
// Optional q-grams widen recall against typo-style noise: each word token
// of length > q additionally emits its character q-grams, marked with a
// leading '\x01' byte so a q-gram can never collide with a whole word.

#pragma once

#include <string>
#include <vector>

#include "data/schema.h"

namespace dader::block {

/// \brief Normalization knobs shared by both candidate generators.
struct TokenizeConfig {
  /// Tokens shorter than this are dropped (2 removes the single-character
  /// punctuation tokens text::WordTokenize emits).
  size_t min_token_length = 2;
  /// When > 0, word tokens longer than `qgram` also emit their character
  /// q-grams of this size (marked, see file comment). 0 disables.
  size_t qgram = 0;
};

/// \brief Distinct normalized tokens of a record, sorted ascending.
///
/// Empty / whitespace-only / punctuation-only attribute values contribute
/// nothing; the result may be empty (callers must treat a token-less
/// record as unblockable rather than indexing an empty key).
std::vector<std::string> RecordTokens(const data::Record& record,
                                      const TokenizeConfig& config);

}  // namespace dader::block
