// MinHash signatures + banded LSH: the high-recall half of candidate
// generation (see src/block/inverted_index.h for the other half).
//
// Signature: num_hashes seeded "permutations", each realized as a keyed
// 64-bit mixer over the FNV-1a hash of every token; signature row i is the
// minimum mixed value. Two records' signatures agree on row i with
// probability equal to their token-set Jaccard similarity, so the mean
// row agreement estimates Jaccard (EstimateJaccard).
//
// Banding: the signature is split into `bands` bands of num_hashes/bands
// rows; each band hashes to a bucket (deterministic FNV over the band's
// rows + the band index). Records sharing any band bucket become
// candidates — the classic S-curve: a pair with Jaccard s collides with
// probability 1 - (1 - s^r)^b for r rows/band and b bands (the bound
// tests/block/minhash_test.cc checks on a seeded corpus).
//
// Determinism: signatures depend only on (config.seed, token set), never
// on thread schedule — SignTable distributes rows over a thread pool and
// writes each signature into its own slot, so the result is bit-identical
// at any thread count (asserted in the block test suite, TSan-clean).
//
// Token-less records (all attributes NULL/whitespace — see tokenize.h) get
// the sentinel signature (all ~0) and are never inserted into any bucket:
// without that guard every empty record would collide with every other in
// every band.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "block/tokenize.h"
#include "data/schema.h"

namespace dader {
class ThreadPool;  // util/thread_pool.h
}

namespace dader::block {

/// \brief MinHash/LSH configuration. num_hashes must be a positive
/// multiple of bands.
struct MinHashConfig {
  size_t num_hashes = 64;
  size_t bands = 16;  ///< rows per band = num_hashes / bands
  /// Band buckets larger than this are skipped by ForEachBucket — a bucket
  /// of k records implies O(k^2) pairs, and such mega-buckets are stop-
  /// token artifacts with no discriminative value (mirrors the index's
  /// df cap).
  size_t max_bucket_size = 64;
  uint64_t seed = 0x5eedULL;
  TokenizeConfig tokenize;
};

/// \brief Seeded signature generator (see file comment).
class MinHasher {
 public:
  explicit MinHasher(MinHashConfig config);

  /// \brief Signature of one record; the all-~0 sentinel when the record
  /// has no tokens.
  std::vector<uint64_t> Signature(const data::Record& record) const;

  /// \brief Signatures of every row; parallel over `pool` when given,
  /// bit-identical to the sequential result at any thread count.
  std::vector<std::vector<uint64_t>> SignTable(const data::Table& table,
                                               ThreadPool* pool = nullptr) const;

  /// \brief True when the signature is the token-less sentinel.
  static bool IsEmptySignature(const std::vector<uint64_t>& signature);

  /// \brief Mean row agreement of two signatures — the Jaccard estimate.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  const MinHashConfig& config() const { return config_; }

 private:
  MinHashConfig config_;
  std::vector<uint64_t> keys_;  ///< one mixing key per hash row
};

/// \brief Banded LSH bucket index over signatures.
class LshIndex {
 public:
  explicit LshIndex(const MinHashConfig& config);

  /// \brief Buckets `id` by every band of its signature; sentinel
  /// (token-less) signatures are skipped entirely.
  void Insert(uint32_t id, const std::vector<uint64_t>& signature);

  /// \brief Visits every band bucket with >= 2 members, skipping buckets
  /// larger than max_bucket_size (counted in num_oversize_buckets()).
  /// Deterministic order: buckets sorted by key, ids in insertion order.
  void ForEachBucket(
      const std::function<void(const std::vector<uint32_t>&)>& visit) const;

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_oversize_buckets() const { return num_oversize_; }

 private:
  MinHashConfig config_;
  size_t rows_per_band_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
  mutable size_t num_oversize_ = 0;
};

}  // namespace dader::block
