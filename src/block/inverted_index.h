// Token-based inverted index: the high-precision half of candidate
// generation (the high-recall half is MinHash/LSH, src/block/minhash.h;
// src/block/candidate_stream.h merges and deduplicates the two).
//
// Build indexes one table: token -> posting list of row ids. Posting lists
// whose document frequency exceeds `df_cap` are dropped after the build —
// a token carried by hundreds of records ("the", a ubiquitous brand) has
// no discriminative power and would otherwise dominate probe cost: with
// the cap, probing one record touches at most |tokens| * df_cap postings.
//
// Probe scores every co-posted row by summed token idf — each shared
// token contributes log1p(num_rows / df), so one shared model code (df 2)
// outranks a shared ubiquitous brand (df 1200); a raw shared count would
// tie them and let the budget cut drop the real match. Rows with at least
// `min_shared_tokens` shared tokens are kept and the top
// `max_candidates_per_probe` by (score desc, count desc, id asc) returned
// — the per-record candidate budget that the recall-vs-budget curve in
// bench_dedup sweeps.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/tokenize.h"
#include "data/schema.h"

namespace dader::block {

/// \brief Inverted-index configuration.
struct IndexConfig {
  TokenizeConfig tokenize;
  /// Posting lists longer than this are dropped after Build (stop tokens).
  size_t df_cap = 512;
  /// Minimum shared qualifying tokens for a probe candidate. One shared
  /// token is meaningful evidence under idf scoring (a shared model code
  /// alone is near-proof); raise to 2 to require corroboration when the
  /// corpus has no key-like tokens.
  size_t min_shared_tokens = 1;
  /// Per-probe candidate budget (top-scored rows kept).
  size_t max_candidates_per_probe = 64;
};

/// \brief One scored candidate row of a probe.
struct ScoredCandidate {
  uint32_t id = 0;             ///< row index in the indexed table
  uint32_t shared_tokens = 0;  ///< qualifying tokens shared with the probe
  double score = 0.0;          ///< summed idf of the shared tokens
};

/// \brief Df-capped token -> posting-list index over one table.
class InvertedIndex {
 public:
  explicit InvertedIndex(IndexConfig config = {}) : config_(std::move(config)) {}

  /// \brief Indexes rows 0..table.size()-1, then applies the df cap.
  /// Replaces any previous contents.
  void Build(const data::Table& table);

  /// \brief Candidates of one probe record (see file comment for scoring
  /// and budget). Deterministic: ties broken by ascending row id.
  std::vector<ScoredCandidate> Probe(const data::Record& record) const;

  /// \brief Distinct tokens resident after the df cap.
  size_t num_tokens() const { return postings_.size(); }
  /// \brief Posting lists dropped by the df cap during the last Build.
  size_t num_capped() const { return num_capped_; }

  const IndexConfig& config() const { return config_; }

 private:
  IndexConfig config_;
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  size_t num_rows_ = 0;
  size_t num_capped_ = 0;
};

}  // namespace dader::block
