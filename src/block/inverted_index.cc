#include "block/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace dader::block {

namespace {

struct IndexMetrics {
  obs::Counter* df_capped;
  obs::Histogram* build_ms;
};

IndexMetrics& Metrics() {
  static IndexMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    IndexMetrics metrics;
    metrics.df_capped = reg.GetCounter(
        "block.postings.df_capped.total",
        "Posting lists dropped by the inverted-index df cap", "lists");
    metrics.build_ms = reg.GetHistogram(
        "block.index.build_ms", "One InvertedIndex::Build over a table", "ms");
    return metrics;
  }();
  return m;
}

}  // namespace

void InvertedIndex::Build(const data::Table& table) {
  obs::ScopedLatency lat(Metrics().build_ms, "block.index.build");
  postings_.clear();
  num_rows_ = table.size();
  num_capped_ = 0;
  for (size_t row = 0; row < table.size(); ++row) {
    for (auto& tok : RecordTokens(table.row(row), config_.tokenize)) {
      postings_[std::move(tok)].push_back(static_cast<uint32_t>(row));
    }
  }
  for (auto it = postings_.begin(); it != postings_.end();) {
    if (it->second.size() > config_.df_cap) {
      it = postings_.erase(it);
      ++num_capped_;
    } else {
      ++it;
    }
  }
  Metrics().df_capped->Add(static_cast<int64_t>(num_capped_));
}

std::vector<ScoredCandidate> InvertedIndex::Probe(
    const data::Record& record) const {
  struct Overlap {
    uint32_t count = 0;
    double score = 0.0;
  };
  std::unordered_map<uint32_t, Overlap> overlap;
  for (const auto& tok : RecordTokens(record, config_.tokenize)) {
    auto it = postings_.find(tok);
    if (it == postings_.end()) continue;
    // Idf weight: a rare token (a model code, df 2) is near-proof of a
    // match; a pool word shared by a thousand rows is weak evidence. The
    // budget cut below must rank on this, not on raw counts.
    const double idf = std::log1p(static_cast<double>(num_rows_) /
                                  static_cast<double>(it->second.size()));
    for (uint32_t id : it->second) {
      Overlap& o = overlap[id];
      ++o.count;
      o.score += idf;
    }
  }
  std::vector<ScoredCandidate> out;
  out.reserve(overlap.size());
  for (const auto& [id, o] : overlap) {
    if (o.count >= config_.min_shared_tokens) {
      out.push_back({id, o.count, o.score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredCandidate& x, const ScoredCandidate& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.shared_tokens != y.shared_tokens) {
                return x.shared_tokens > y.shared_tokens;
              }
              return x.id < y.id;
            });
  if (out.size() > config_.max_candidates_per_probe) {
    out.resize(config_.max_candidates_per_probe);
  }
  return out;
}

}  // namespace dader::block
