// Candidate generation + the bounded stream that carries candidates to
// the matcher.
//
// GenerateCandidates merges both generators — inverted-index probes
// (A records against an index over B) and LSH band buckets over the union
// of both tables — into a single deduplicated stream of cross-table
// (A row, B row) pairs:
//
//   * Orientation is canonical. An LSH bucket holds union ids, so the
//     same pair can surface as (a,b) from one band and (b,a) from another;
//     both normalize to (A row, B row) before the dedup check, so the
//     router downstream never sees a mirrored duplicate (PairKey is
//     orientation-sensitive — a mirror would double match work AND split
//     the pair's feature-cache entries across two shards).
//   * Every unique pair is emitted exactly once even when the index and
//     LSH both find it (block.candidates.duplicate.total counts the
//     suppressed re-emits).
//   * Within-table bucket cohabitants (A-A, B-B) are skipped: this stage
//     links two tables; the generated corpora have no within-table
//     duplicates by construction.
//
// CandidateQueue is the bounded producer/consumer handoff: the blocking
// stage pushes (blocking when full — candidate generation must not run
// unboundedly ahead of the matcher), the pipeline consumer pops and
// submits. Close() lets the consumer drain and stop.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "block/inverted_index.h"
#include "block/minhash.h"
#include "data/schema.h"

namespace dader::block {

/// \brief One cross-table candidate: row `a` of table A vs row `b` of B.
struct Candidate {
  uint32_t a = 0;
  uint32_t b = 0;
};

/// \brief Knobs of the merged candidate generator.
struct CandidateGenConfig {
  IndexConfig index;
  MinHashConfig minhash;
  bool use_index = true;
  bool use_lsh = true;
  /// Threads for MinHash signing (0 = sequential; signatures are
  /// bit-identical at any count).
  size_t sign_threads = 0;
};

/// \brief Counters of one GenerateCandidates run.
struct CandidateStats {
  int64_t index_candidates = 0;  ///< pairs surfaced by index probes
  int64_t lsh_candidates = 0;    ///< pairs surfaced by LSH band buckets
  int64_t duplicates = 0;        ///< suppressed re-emits (mirrors + overlap)
  int64_t emitted = 0;           ///< unique pairs handed to `emit`
};

/// \brief Streams deduplicated candidates into `emit`; stops early (and
/// returns what was counted so far) when `emit` returns false. Runs on the
/// caller's thread.
CandidateStats GenerateCandidates(const data::Table& a, const data::Table& b,
                                  const CandidateGenConfig& config,
                                  const std::function<bool(Candidate)>& emit);

/// \brief Convenience: all candidates as a vector (tests, benches).
std::vector<Candidate> CollectCandidates(const data::Table& a,
                                         const data::Table& b,
                                         const CandidateGenConfig& config,
                                         CandidateStats* stats = nullptr);

/// \brief Fraction of gold (a,b) pairs present in `candidates`; 1.0 when
/// gold is empty.
double CandidateRecall(const std::vector<Candidate>& candidates,
                       const std::vector<std::pair<size_t, size_t>>& gold);

/// \brief Bounded blocking MPMC queue of candidates (see file comment).
class CandidateQueue {
 public:
  explicit CandidateQueue(size_t capacity);

  /// \brief Blocks while full; false (candidate dropped) after Close().
  bool Push(Candidate candidate);

  /// \brief Blocks while empty and open; nullopt once closed and drained.
  std::optional<Candidate> Pop();

  /// \brief Wakes every waiter; further Push calls fail, Pop drains.
  void Close();

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Candidate> items_;
  bool closed_ = false;
};

}  // namespace dader::block
