#include "block/minhash.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dader::block {

namespace {

constexpr uint64_t kEmptyRow = ~0ULL;

obs::Histogram* SignHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "block.sign_ms", "One MinHasher::SignTable pass over a table", "ms");
  return h;
}

// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Keyed per hash row,
// it acts as that row's "permutation" of the token-hash space.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

MinHasher::MinHasher(MinHashConfig config) : config_(std::move(config)) {
  DADER_CHECK_GT(config_.num_hashes, 0u);
  DADER_CHECK_GT(config_.bands, 0u);
  DADER_CHECK_EQ(config_.num_hashes % config_.bands, 0u);
  Rng rng(config_.seed);
  keys_.reserve(config_.num_hashes);
  for (size_t i = 0; i < config_.num_hashes; ++i) {
    keys_.push_back(rng.NextUint64());
  }
}

std::vector<uint64_t> MinHasher::Signature(const data::Record& record) const {
  std::vector<uint64_t> sig(config_.num_hashes, kEmptyRow);
  for (const auto& tok : RecordTokens(record, config_.tokenize)) {
    const uint64_t h = Fnv1a64(tok);
    for (size_t i = 0; i < keys_.size(); ++i) {
      sig[i] = std::min(sig[i], Mix(h ^ keys_[i]));
    }
  }
  return sig;
}

std::vector<std::vector<uint64_t>> MinHasher::SignTable(
    const data::Table& table, ThreadPool* pool) const {
  obs::ScopedLatency lat(SignHistogram(), "block.sign");
  std::vector<std::vector<uint64_t>> out(table.size());
  if (pool == nullptr || pool->num_threads() <= 1 || table.size() < 2) {
    for (size_t i = 0; i < table.size(); ++i) {
      out[i] = Signature(table.row(i));
    }
    return out;
  }
  // Contiguous row chunks, one task each; every task writes only its own
  // slots, so the result is identical to the sequential loop.
  const size_t chunks = std::min(table.size(), pool->num_threads() * 4);
  const size_t chunk_size = (table.size() + chunks - 1) / chunks;
  for (size_t begin = 0; begin < table.size(); begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, table.size());
    pool->Submit([this, &table, &out, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        out[i] = Signature(table.row(i));
      }
    });
  }
  pool->Wait();
  return out;
}

bool MinHasher::IsEmptySignature(const std::vector<uint64_t>& signature) {
  return std::all_of(signature.begin(), signature.end(),
                     [](uint64_t v) { return v == kEmptyRow; });
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  DADER_CHECK_EQ(a.size(), b.size());
  DADER_CHECK(!a.empty());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

LshIndex::LshIndex(const MinHashConfig& config)
    : config_(config), rows_per_band_(config.num_hashes / config.bands) {
  DADER_CHECK_GT(config_.bands, 0u);
  DADER_CHECK_EQ(config_.num_hashes % config_.bands, 0u);
}

void LshIndex::Insert(uint32_t id, const std::vector<uint64_t>& signature) {
  DADER_CHECK_EQ(signature.size(), config_.num_hashes);
  if (MinHasher::IsEmptySignature(signature)) return;
  for (size_t band = 0; band < config_.bands; ++band) {
    // FNV-1a over the band's rows, seeded by the band index so identical
    // row values in different bands land in different buckets.
    uint64_t h = 0xcbf29ce484222325ULL ^ (band * 0x100000001b3ULL);
    for (size_t r = 0; r < rows_per_band_; ++r) {
      uint64_t v = signature[band * rows_per_band_ + r];
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffULL;
        h *= 0x100000001b3ULL;
      }
    }
    buckets_[h].push_back(id);
  }
}

void LshIndex::ForEachBucket(
    const std::function<void(const std::vector<uint32_t>&)>& visit) const {
  num_oversize_ = 0;
  std::vector<uint64_t> keys;
  keys.reserve(buckets_.size());
  for (const auto& [key, ids] : buckets_) {
    if (ids.size() >= 2) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    const auto& ids = buckets_.at(key);
    if (ids.size() > config_.max_bucket_size) {
      ++num_oversize_;
      continue;
    }
    visit(ids);
  }
}

}  // namespace dader::block
