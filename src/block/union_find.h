// Disjoint-set forest for entity clustering: accepted matches are union
// edges, clusters are the resulting components (path halving + union by
// size, effectively O(alpha(n)) per operation).
//
// tests/block/union_find_test.cc checks Clusters() against brute-force
// connected components on seeded random graphs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dader::block {

/// \brief Union-find over element ids 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// \brief Representative of x's component (path halving).
  uint32_t Find(uint32_t x) const;

  /// \brief Merges the components of x and y; false when already merged.
  bool Union(uint32_t x, uint32_t y);

  /// \brief True when x and y share a component.
  bool Connected(uint32_t x, uint32_t y) const { return Find(x) == Find(y); }

  size_t size() const { return parent_.size(); }
  /// \brief Number of components (singletons included).
  size_t num_components() const { return num_components_; }

  /// \brief All components with at least `min_size` members. Deterministic:
  /// clusters ordered by their smallest member, members ascending.
  std::vector<std::vector<uint32_t>> Clusters(size_t min_size = 2) const;

 private:
  mutable std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_components_;
};

}  // namespace dader::block
