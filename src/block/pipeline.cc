#include "block/pipeline.h"

#include <chrono>
#include <thread>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dader::block {

namespace {

struct PipelineMetrics {
  obs::Counter* unions;
  obs::Gauge* pair_reduction;
  obs::Gauge* candidate_recall;
};

PipelineMetrics& Metrics() {
  static PipelineMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    PipelineMetrics metrics;
    metrics.unions = reg.GetCounter(
        "block.cluster.unions.total",
        "Accepted matches merged into entity clusters", "unions");
    metrics.pair_reduction = reg.GetGauge(
        "block.pair_reduction.ratio",
        "Cross product over emitted candidates of the last dedup run",
        "ratio");
    metrics.candidate_recall = reg.GetGauge(
        "block.candidate_recall",
        "Candidate recall vs gold of the last dedup run (when gold known)",
        "fraction");
    return metrics;
  }();
  return m;
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

uint64_t PairBits(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<DedupResult> RunDedup(
    const data::Table& a, const data::Table& b,
    const std::vector<std::pair<size_t, size_t>>* gold,
    serve::ShardedMatchService* service, const DedupConfig& config) {
  if (service == nullptr) {
    return Status::InvalidArgument("RunDedup: service must not be null");
  }
  if (a.size() == 0 || b.size() == 0) {
    return Status::InvalidArgument("RunDedup: both tables must be non-empty");
  }
  obs::TraceSpan run_span("block.run");
  DedupResult result;
  result.records_a = a.size();
  result.records_b = b.size();

  // Producer: the blocking stage, pushing into the bounded queue. The
  // stats are written before the queue closes, so the consumer-side read
  // below happens strictly after (join is the synchronization point).
  CandidateQueue queue(config.queue_capacity);
  CandidateStats producer_stats;
  double producer_ms = 0.0;
  const auto start = std::chrono::steady_clock::now();
  std::thread producer([&] {
    const auto producer_start = std::chrono::steady_clock::now();
    producer_stats = GenerateCandidates(
        a, b, config.candidates, [&](Candidate c) { return queue.Push(c); });
    producer_ms = ElapsedMs(producer_start);
    queue.Close();
  });

  // Consumer: stream candidates into the sharded matcher behind a bounded
  // in-flight window; accepted matches become union-find edges.
  std::vector<Candidate> submitted_pairs;
  {
    obs::TraceSpan match_span("block.match");
    serve::StreamSubmitter::Options submit_options;
    submit_options.max_in_flight = config.max_in_flight;
    serve::StreamSubmitter submitter(
        service, submit_options,
        [&](size_t index, const serve::MatchRequest&,
            const serve::MatchResponse& response) {
          if (!response.status.ok()) {
            ++result.responses_failed;
            return;
          }
          ++result.responses_ok;
          if (response.label == 1) {
            result.matched_pairs.push_back(submitted_pairs[index]);
          }
        });
    for (std::optional<Candidate> c = queue.Pop(); c.has_value();
         c = queue.Pop()) {
      serve::MatchRequest request;
      request.a = a.row(c->a);
      request.b = b.row(c->b);
      request.deadline_ms = config.deadline_ms;
      submitted_pairs.push_back(*c);
      submitter.Submit(std::move(request));
    }
    submitter.Drain();
  }
  producer.join();
  result.candidates = producer_stats;
  // The stages overlap; block_ms is the producer's own wall time (push
  // waits included), match_ms the end-to-end wall of both.
  result.block_ms = producer_ms;
  result.match_ms = ElapsedMs(start);
  result.matches = static_cast<int64_t>(result.matched_pairs.size());

  // Clustering: union ids 0..|A|-1 are A rows, |A|.. are B rows.
  {
    obs::TraceSpan cluster_span("block.cluster");
    UnionFind uf(a.size() + b.size());
    const uint32_t b_offset = static_cast<uint32_t>(a.size());
    for (const auto& m : result.matched_pairs) {
      if (uf.Union(m.a, b_offset + m.b)) Metrics().unions->Increment();
    }
    result.entity_clusters = uf.Clusters(/*min_size=*/2);
    result.clusters = result.entity_clusters.size();
    for (const auto& cluster : result.entity_clusters) {
      result.clustered_records += cluster.size();
    }
  }

  const double cross =
      static_cast<double>(a.size()) * static_cast<double>(b.size());
  result.pair_reduction =
      result.candidates.emitted > 0
          ? cross / static_cast<double>(result.candidates.emitted)
          : cross;
  Metrics().pair_reduction->Set(result.pair_reduction);

  if (gold != nullptr && !gold->empty()) {
    std::unordered_set<uint64_t> gold_set;
    gold_set.reserve(gold->size() * 2);
    for (const auto& [ga, gb] : *gold) {
      gold_set.insert(PairBits(static_cast<uint32_t>(ga),
                               static_cast<uint32_t>(gb)));
    }
    size_t candidate_hits = 0;
    for (const auto& c : submitted_pairs) {
      candidate_hits += gold_set.count(PairBits(c.a, c.b));
    }
    result.candidate_recall =
        static_cast<double>(candidate_hits) / static_cast<double>(gold->size());
    Metrics().candidate_recall->Set(result.candidate_recall);

    int64_t tp = 0;
    for (const auto& m : result.matched_pairs) {
      tp += static_cast<int64_t>(gold_set.count(PairBits(m.a, m.b)));
    }
    const int64_t fp = result.matches - tp;
    const int64_t fn = static_cast<int64_t>(gold->size()) - tp;
    result.precision =
        tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
    result.recall =
        tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                    : 0.0;
    result.f1 = result.precision + result.recall > 0
                    ? 2 * result.precision * result.recall /
                          (result.precision + result.recall)
                    : 0.0;
  }
  return result;
}

}  // namespace dader::block
