#include "block/candidate_stream.h"

#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dader::block {

namespace {

struct StreamMetrics {
  obs::Counter* index_candidates;
  obs::Counter* lsh_candidates;
  obs::Counter* duplicates;
  obs::Counter* emitted;
  obs::Gauge* queue_depth;
  obs::Histogram* gen_ms;
};

StreamMetrics& Metrics() {
  static StreamMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    StreamMetrics metrics;
    metrics.index_candidates = reg.GetCounter(
        "block.candidates.index.total",
        "Candidate pairs surfaced by inverted-index probes", "pairs");
    metrics.lsh_candidates = reg.GetCounter(
        "block.candidates.lsh.total",
        "Candidate pairs surfaced by LSH band-bucket collisions", "pairs");
    metrics.duplicates = reg.GetCounter(
        "block.candidates.duplicate.total",
        "Candidate re-emits suppressed by the dedup stage "
        "((b,a) mirrors and index/LSH overlap)",
        "pairs");
    metrics.emitted = reg.GetCounter(
        "block.candidates.emitted.total",
        "Unique candidate pairs streamed to the matcher", "pairs");
    metrics.queue_depth = reg.GetGauge(
        "block.queue.depth", "Bounded candidate-queue depth", "pairs");
    metrics.gen_ms = reg.GetHistogram(
        "block.candidates.gen_ms",
        "One GenerateCandidates pass (both generators, dedup included)",
        "ms");
    return metrics;
  }();
  return m;
}

uint64_t PairBits(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

CandidateStats GenerateCandidates(const data::Table& a, const data::Table& b,
                                  const CandidateGenConfig& config,
                                  const std::function<bool(Candidate)>& emit) {
  obs::ScopedLatency lat(Metrics().gen_ms, "block.candidates");
  CandidateStats stats;
  std::unordered_set<uint64_t> seen;
  bool stopped = false;
  auto emit_unique = [&](uint32_t ra, uint32_t rb) {
    if (stopped) return;
    if (!seen.insert(PairBits(ra, rb)).second) {
      ++stats.duplicates;
      Metrics().duplicates->Increment();
      return;
    }
    ++stats.emitted;
    Metrics().emitted->Increment();
    if (!emit({ra, rb})) stopped = true;
  };

  if (config.use_index) {
    InvertedIndex index(config.index);
    index.Build(b);
    for (size_t i = 0; i < a.size() && !stopped; ++i) {
      const auto scored = index.Probe(a.row(i));
      stats.index_candidates += static_cast<int64_t>(scored.size());
      Metrics().index_candidates->Add(static_cast<int64_t>(scored.size()));
      for (const auto& c : scored) {
        emit_unique(static_cast<uint32_t>(i), c.id);
        if (stopped) break;
      }
    }
  }

  if (config.use_lsh && !stopped) {
    MinHasher hasher(config.minhash);
    std::unique_ptr<ThreadPool> pool;
    if (config.sign_threads > 1) {
      pool = std::make_unique<ThreadPool>(config.sign_threads);
    }
    // One index over the union of both tables: A rows keep their ids, B
    // rows are offset by |A|.
    LshIndex lsh(config.minhash);
    const uint32_t b_offset = static_cast<uint32_t>(a.size());
    const auto sigs_a = hasher.SignTable(a, pool.get());
    const auto sigs_b = hasher.SignTable(b, pool.get());
    for (uint32_t i = 0; i < sigs_a.size(); ++i) lsh.Insert(i, sigs_a[i]);
    for (uint32_t j = 0; j < sigs_b.size(); ++j) {
      lsh.Insert(b_offset + j, sigs_b[j]);
    }
    lsh.ForEachBucket([&](const std::vector<uint32_t>& ids) {
      if (stopped) return;
      for (size_t x = 0; x < ids.size(); ++x) {
        for (size_t y = x + 1; y < ids.size(); ++y) {
          const bool x_in_a = ids[x] < b_offset;
          const bool y_in_a = ids[y] < b_offset;
          if (x_in_a == y_in_a) continue;  // within-table: not linkage
          // Canonical orientation: the A row first, whatever order the
          // bucket produced — this is where (b,a) mirrors collapse.
          const uint32_t ra = x_in_a ? ids[x] : ids[y];
          const uint32_t rb = (x_in_a ? ids[y] : ids[x]) - b_offset;
          ++stats.lsh_candidates;
          Metrics().lsh_candidates->Increment();
          emit_unique(ra, rb);
          if (stopped) return;
        }
      }
    });
  }
  return stats;
}

std::vector<Candidate> CollectCandidates(const data::Table& a,
                                         const data::Table& b,
                                         const CandidateGenConfig& config,
                                         CandidateStats* stats) {
  std::vector<Candidate> out;
  CandidateStats s = GenerateCandidates(a, b, config, [&](Candidate c) {
    out.push_back(c);
    return true;
  });
  if (stats != nullptr) *stats = s;
  return out;
}

double CandidateRecall(const std::vector<Candidate>& candidates,
                       const std::vector<std::pair<size_t, size_t>>& gold) {
  if (gold.empty()) return 1.0;
  std::unordered_set<uint64_t> cand;
  cand.reserve(candidates.size() * 2);
  for (const auto& c : candidates) cand.insert(PairBits(c.a, c.b));
  size_t hit = 0;
  for (const auto& [ga, gb] : gold) {
    hit += cand.count(PairBits(static_cast<uint32_t>(ga),
                               static_cast<uint32_t>(gb)));
  }
  return static_cast<double>(hit) / static_cast<double>(gold.size());
}

CandidateQueue::CandidateQueue(size_t capacity) : capacity_(capacity) {
  DADER_CHECK_GT(capacity, 0u);
}

bool CandidateQueue::Push(Candidate candidate) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(candidate);
  Metrics().queue_depth->Set(static_cast<double>(items_.size()));
  not_empty_.notify_one();
  return true;
}

std::optional<Candidate> CandidateQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Candidate out = items_.front();
  items_.pop_front();
  Metrics().queue_depth->Set(static_cast<double>(items_.size()));
  not_full_.notify_one();
  return out;
}

void CandidateQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace dader::block
