#include "block/union_find.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace dader::block {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

uint32_t UnionFind::Find(uint32_t x) const {
  DADER_CHECK_LT(x, parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t x, uint32_t y) {
  uint32_t rx = Find(x);
  uint32_t ry = Find(y);
  if (rx == ry) return false;
  if (size_[rx] < size_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  size_[rx] += size_[ry];
  --num_components_;
  return true;
}

std::vector<std::vector<uint32_t>> UnionFind::Clusters(size_t min_size) const {
  // map keyed by root keeps the output deterministic; roots are then
  // re-sorted by smallest member.
  std::map<uint32_t, std::vector<uint32_t>> by_root;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<uint32_t>> out;
  for (auto& [root, members] : by_root) {
    if (members.size() < min_size) continue;
    out.push_back(std::move(members));  // members already ascending
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
              return a.front() < b.front();
            });
  return out;
}

}  // namespace dader::block
