#include "block/tokenize.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "obs/metrics.h"
#include "text/tokenizer.h"

namespace dader::block {

namespace {

obs::Counter* TokensCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "block.tokens.total",
      "Normalized tokens emitted by the blocking tokenizer", "tokens");
  return counter;
}

bool HasAlnum(const std::string& token) {
  return std::any_of(token.begin(), token.end(), [](char ch) {
    return std::isalnum(static_cast<unsigned char>(ch)) != 0;
  });
}

}  // namespace

std::vector<std::string> RecordTokens(const data::Record& record,
                                      const TokenizeConfig& config) {
  std::set<std::string> tokens;
  for (const auto& value : record.values()) {
    // NULL (empty) and whitespace-only values contribute nothing; checked
    // up front so the tokenizer never sees them.
    const bool blank =
        std::all_of(value.begin(), value.end(), [](char ch) {
          return std::isspace(static_cast<unsigned char>(ch)) != 0;
        });
    if (blank) continue;
    for (auto& tok : text::WordTokenize(value)) {
      if (tok.size() < config.min_token_length) continue;
      if (!HasAlnum(tok)) continue;  // "--", "..", etc. are not keys
      if (config.qgram > 0 && tok.size() > config.qgram) {
        for (size_t i = 0; i + config.qgram <= tok.size(); ++i) {
          std::string gram;
          gram.reserve(config.qgram + 1);
          gram.push_back('\x01');
          gram.append(tok, i, config.qgram);
          tokens.insert(std::move(gram));
        }
      }
      tokens.insert(std::move(tok));
    }
  }
  std::vector<std::string> out(tokens.begin(), tokens.end());
  TokensCounter()->Add(static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace dader::block
