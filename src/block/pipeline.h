// The end-to-end dedup pipeline: raw records in, entity clusters out.
//
//   table A ─┐   ┌ inverted index (df-capped postings)  ┐
//            ├──>│                                       ├─ dedup ─> bounded
//   table B ─┘   └ MinHash signatures + banded LSH      ┘   queue
//                                                              │ producer thread
//                                                              v
//                               StreamSubmitter (bounded in-flight window)
//                                                              │
//                                                              v
//                                    ShardedMatchService (pair-key router,
//                                    per-shard queue/batcher/cache/breaker)
//                                                              │ accepted matches
//                                                              v
//                                              union-find ─> entity clusters
//
// The blocking stage runs on a producer thread pushing into the bounded
// CandidateQueue; the calling thread consumes, streams into the sharded
// matcher through a bounded in-flight window, and unions accepted matches
// into clusters. Two bounds — the queue and the submit window — keep
// memory flat no matter how far candidate generation outpaces matching.
//
// When gold matches are supplied the result carries candidate recall
// (the ceiling blocking imposes on everything downstream), match-level
// precision/recall/F1, and the pair-reduction ratio (cross product over
// emitted candidates) — the numbers bench_dedup records in
// BENCH_dedup.json.

#pragma once

#include <cstdint>
#include <vector>

#include "block/candidate_stream.h"
#include "block/union_find.h"
#include "serve/sharded_service.h"
#include "serve/stream_submit.h"
#include "util/status.h"

namespace dader::block {

/// \brief End-to-end pipeline configuration.
struct DedupConfig {
  CandidateGenConfig candidates;
  /// Bounded candidate-queue capacity between blocking and matching.
  size_t queue_capacity = 1024;
  /// In-flight window into the sharded service. Keep it at or below the
  /// sum of the shards' admission-queue capacities or the excess is shed.
  size_t max_in_flight = 64;
  /// Per-request deadline; streaming tolerates queueing, so this defaults
  /// far above the serving default.
  double deadline_ms = 30000.0;
};

/// \brief Everything one RunDedup produced (counters + quality measures).
struct DedupResult {
  size_t records_a = 0;
  size_t records_b = 0;
  CandidateStats candidates;
  int64_t responses_ok = 0;      ///< candidates the matcher answered OK
  int64_t responses_failed = 0;  ///< shed/expired/failed candidates
  int64_t matches = 0;           ///< accepted (label == 1) pairs
  size_t clusters = 0;           ///< entity clusters with >= 2 members
  size_t clustered_records = 0;  ///< records inside those clusters
  /// Cross product |A|*|B| over emitted candidates (the blocking win).
  double pair_reduction = 0.0;
  /// vs gold, when provided; negative otherwise.
  double candidate_recall = -1.0;
  double precision = -1.0;
  double recall = -1.0;
  double f1 = -1.0;
  /// Wall-clock split: candidate generation vs everything downstream.
  double block_ms = 0.0;
  double match_ms = 0.0;
  /// Accepted-match edges, canonical (A row, B row) — cluster input.
  std::vector<Candidate> matched_pairs;
  /// Clusters over union ids: A rows keep their ids, B rows offset by
  /// |A| (ids ascending inside a cluster, clusters by smallest member).
  std::vector<std::vector<uint32_t>> entity_clusters;
};

/// \brief Runs the full pipeline (see file comment). `gold` may be null;
/// `service` must be started and outlive the call.
Result<DedupResult> RunDedup(
    const data::Table& a, const data::Table& b,
    const std::vector<std::pair<size_t, size_t>>* gold,
    serve::ShardedMatchService* service, const DedupConfig& config);

}  // namespace dader::block
