// Leveled logging to stderr with a process-wide minimum level.
//
// Usage: DADER_LOG(INFO) << "epoch " << e << " f1=" << f1;

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace dader {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// \brief Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dader

#define DADER_LOG(level)                                               \
  ::dader::internal::LogMessage(::dader::LogLevel::k##level, __FILE__, \
                                __LINE__)
