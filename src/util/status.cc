#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace dader {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace dader
