#include "util/clock.h"

#include <chrono>
#include <thread>

namespace dader::util {

namespace {

class RealClock : public Clock {
 public:
  double NowMs() override {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepForMs(double ms) override {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

double ManualClock::NowMs() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_ms_;
}

void ManualClock::SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_ms_ += ms;
  slept_ms_ += ms;
}

void ManualClock::AdvanceMs(double ms) {
  if (ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_ms_ += ms;
}

double ManualClock::slept_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slept_ms_;
}

}  // namespace dader::util
