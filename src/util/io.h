// Binary serialization primitives for persisting model weights.
//
// The format is little-endian, tagged with a magic string and version so
// stale caches are rejected instead of misread.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dader {

/// \brief CRC-32 (IEEE 802.3) of `n` bytes, continuing from `crc` (pass 0
/// to start a fresh checksum).
uint32_t UpdateCrc32(uint32_t crc, const void* data, size_t n);

/// \brief Streaming binary writer over a file.
///
/// Every byte written (header included) feeds a running CRC-32; callers
/// that want a tamper-evident file end with WriteCrcFooterAndClose()
/// instead of Close().
class BinaryWriter {
 public:
  /// \brief Opens `path` for writing and emits the header.
  static Result<BinaryWriter> Open(const std::string& path,
                                   const std::string& magic, uint32_t version);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  void WriteI64s(const std::vector<int64_t>& v);
  void WriteI8s(const std::vector<int8_t>& v);

  /// \brief Flushes and reports any stream error.
  Status Close();

  /// \brief Appends the running CRC-32 of everything written so far as a
  /// 4-byte little-endian footer, then flushes and closes.
  Status WriteCrcFooterAndClose();

  /// \brief Running CRC-32 of all bytes written so far.
  uint32_t crc() const { return crc_; }

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  void WriteRaw(const void* p, size_t n);
  std::ofstream out_;
  uint32_t crc_ = 0;
};

/// \brief Streaming binary reader; validates the header at open.
///
/// Mirrors BinaryWriter's running CRC-32 over every byte read, so a file
/// written with WriteCrcFooterAndClose() is verified with VerifyCrcFooter()
/// after the payload has been consumed.
class BinaryReader {
 public:
  static Result<BinaryReader> Open(const std::string& path,
                                   const std::string& magic,
                                   uint32_t expected_version);

  /// \brief Like Open but accepts any version in [min_version, max_version]
  /// and reports which one the file carries through `version_out`. Used by
  /// formats that stay readable across revisions (tensor files v2/v3).
  static Result<BinaryReader> OpenVersionRange(const std::string& path,
                                               const std::string& magic,
                                               uint32_t min_version,
                                               uint32_t max_version,
                                               uint32_t* version_out);

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloats();
  Result<std::vector<int64_t>> ReadI64s();
  Result<std::vector<int8_t>> ReadI8s();

  /// \brief Reads the 4-byte CRC footer (not itself checksummed) and
  /// compares it against the running CRC of everything read so far.
  /// `context` names the file in error messages.
  Status VerifyCrcFooter(const std::string& context);

  /// \brief Running CRC-32 of all payload bytes read so far.
  uint32_t crc() const { return crc_; }

 private:
  explicit BinaryReader(std::ifstream in) : in_(std::move(in)) {}
  Status CheckStream();
  Status ReadRaw(void* p, size_t n);
  std::ifstream in_;
  uint32_t crc_ = 0;
};

/// \brief True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace dader
