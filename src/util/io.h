// Binary serialization primitives for persisting model weights.
//
// The format is little-endian, tagged with a magic string and version so
// stale caches are rejected instead of misread.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dader {

/// \brief Streaming binary writer over a file.
class BinaryWriter {
 public:
  /// \brief Opens `path` for writing and emits the header.
  static Result<BinaryWriter> Open(const std::string& path,
                                   const std::string& magic, uint32_t version);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  void WriteI64s(const std::vector<int64_t>& v);

  /// \brief Flushes and reports any stream error.
  Status Close();

 private:
  explicit BinaryWriter(std::ofstream out) : out_(std::move(out)) {}
  std::ofstream out_;
};

/// \brief Streaming binary reader; validates the header at open.
class BinaryReader {
 public:
  static Result<BinaryReader> Open(const std::string& path,
                                   const std::string& magic,
                                   uint32_t expected_version);

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloats();
  Result<std::vector<int64_t>> ReadI64s();

 private:
  explicit BinaryReader(std::ifstream in) : in_(std::move(in)) {}
  Status CheckStream();
  std::ifstream in_;
};

/// \brief True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace dader
