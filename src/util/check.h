// Invariant-checking macros for programmer errors.
//
// These abort the process with a location-stamped message. They are for
// conditions that indicate a bug in this library, never for conditions a
// caller could plausibly trigger with bad-but-valid input (use Status for
// those). DADER_DCHECK compiles away in NDEBUG builds.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace dader::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "%s:%d: check failed: %s%s%s\n", file, line, expr,
               (msg != nullptr && msg[0] != '\0') ? " - " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dader::internal

#define DADER_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) ::dader::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
  } while (false)

#define DADER_CHECK(cond) DADER_CHECK_MSG(cond, "")

#define DADER_CHECK_EQ(a, b) DADER_CHECK((a) == (b))
#define DADER_CHECK_NE(a, b) DADER_CHECK((a) != (b))
#define DADER_CHECK_LT(a, b) DADER_CHECK((a) < (b))
#define DADER_CHECK_LE(a, b) DADER_CHECK((a) <= (b))
#define DADER_CHECK_GT(a, b) DADER_CHECK((a) > (b))
#define DADER_CHECK_GE(a, b) DADER_CHECK((a) >= (b))

#ifdef NDEBUG
#define DADER_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define DADER_DCHECK(cond) DADER_CHECK(cond)
#endif
