#include "util/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace dader {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Parses all records (including the header) from raw text.
Result<std::vector<std::vector<std::string>>> ParseRecords(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };

  // Tolerate a UTF-8 byte-order mark (common in exports from Windows
  // tooling); it would otherwise glue onto the first header name.
  size_t start = 0;
  if (text.size() >= 3 && text.compare(0, 3, "\xEF\xBB\xBF") == 0) {
    start = 3;
  }

  for (size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      end_field();
    } else if (c == '\r') {
      // Swallow; handled with the following '\n' (or ignored if bare).
    } else if (c == '\n') {
      end_record();
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  // Trailing record without final newline.
  if (field_started || !field.empty() || !current.empty()) {
    end_record();
  }
  return records;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text) {
  DADER_ASSIGN_OR_RETURN(auto records, ParseRecords(text));
  if (records.empty()) {
    return Status::InvalidArgument("CSV: empty document (no header)");
  }
  CsvTable table;
  table.header = std::move(records.front());
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].size() != table.header.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV: row %zu has %zu fields, header has %zu", i,
                    records[i].size(), table.header.size()));
    }
    table.rows.push_back(std::move(records[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const char* cause = errno != 0 ? std::strerror(errno) : "unknown cause";
    return Status::IOError(
        StrFormat("cannot open CSV file '%s': %s", path.c_str(), cause));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::IOError(
        StrFormat("read failed for CSV file '%s'", path.c_str()));
  }
  return ParseCsv(ss.str());
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string FormatCsv(const CsvTable& table) {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << FormatCsv(table);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace dader
