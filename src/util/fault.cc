#include "util/fault.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace dader {

namespace {

int KindIndex(FaultKind kind) { return static_cast<int>(kind); }

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::NotFound("no regular file at " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNanGradient:
      return "nan-gradient";
    case FaultKind::kCorruptCheckpoint:
      return "corrupt-checkpoint";
    case FaultKind::kAbortStep:
      return "abort-step";
    case FaultKind::kExtractorFault:
      return "extractor-fault";
    case FaultKind::kExtractorNan:
      return "extractor-nan";
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeHang:
      return "node-hang";
    case FaultKind::kHeartbeatDrop:
      return "heartbeat-drop";
    case FaultKind::kConnReset:
      return "conn-reset";
    case FaultKind::kSlowNode:
      return "slow-node";
    case FaultKind::kSnapshotTorn:
      return "snapshot-torn";
    case FaultKind::kCoordinatorCrash:
      return "coordinator-crash";
  }
  return "?";
}

void FaultInjector::Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_[KindIndex(spec.kind)] = spec;
}

void FaultInjector::Disarm(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_[KindIndex(kind)].reset();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumFaultKinds; ++i) {
    specs_[i].reset();
    hits_[i] = 0;
  }
}

bool FaultInjector::armed(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_[KindIndex(kind)].has_value();
}

bool FaultInjector::ShouldFire(FaultKind kind, int epoch, int step,
                               int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const int idx = KindIndex(kind);
  const std::optional<FaultSpec>& spec = specs_[idx];
  if (!spec.has_value()) return false;
  if (hits_[idx] >= spec->max_hits) return false;
  if (spec->epoch >= 0 && spec->epoch != epoch) return false;
  if (spec->step >= 0 && spec->step != step) return false;
  if (spec->shard >= 0 && spec->shard != shard) return false;
  if (spec->probability < 1.0 && !rng_.NextBool(spec->probability)) {
    return false;
  }
  ++hits_[idx];
  return true;
}

int FaultInjector::hits(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_[KindIndex(kind)];
}

double FaultInjector::param_ms(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::optional<FaultSpec>& spec = specs_[KindIndex(kind)];
  return spec.has_value() ? spec->param_ms : 0.0;
}

Status FaultInjector::TruncateFile(const std::string& path,
                                   double keep_fraction) {
  if (keep_fraction < 0.0 || keep_fraction >= 1.0) {
    return Status::InvalidArgument("keep_fraction must be in [0, 1)");
  }
  uint64_t size = 0;
  {
    auto r = FileSize(path);
    if (!r.ok()) return r.status();
    size = r.ValueOrDie();
  }
  const auto keep =
      static_cast<off_t>(static_cast<double>(size) * keep_fraction);
  if (::truncate(path.c_str(), keep) != 0) {
    return Status::IOError("truncate failed for " + path);
  }
  return Status::OK();
}

Status FaultInjector::CorruptByte(const std::string& path, uint64_t offset) {
  uint64_t size = 0;
  {
    auto r = FileSize(path);
    if (!r.ok()) return r.status();
    size = r.ValueOrDie();
  }
  if (offset >= size) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " past end of " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  unsigned char byte = 0;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("read failed for " + path);
  }
  byte ^= 0xFF;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("write failed for " + path);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace dader
