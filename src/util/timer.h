// Wall-clock stopwatch used by trainers and benches for progress reporting.

#pragma once

#include <chrono>

namespace dader {

/// \brief Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dader
