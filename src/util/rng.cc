#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace dader {

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on two uniforms; u1 bounded away from 0 to keep log finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  DADER_CHECK_LE(k, n);
  // Partial Fisher-Yates: shuffle only the first k slots.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + NextBelow(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dader
