// A small command-line flag parser for examples and bench binaries.
//
// Flags are "--name=value" or "--name value"; bare "--name" sets a boolean.
// Unknown flags are an error so typos fail fast.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace dader {

/// \brief Declarative flag registry; call Define* then Parse(argc, argv).
class FlagParser {
 public:
  /// \brief Declares a string flag with a default and help text.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// \brief Parses argv; positional arguments are collected in order.
  Status Parse(int argc, char** argv);

  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// \brief Formatted help text listing all flags and defaults.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual value
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dader
