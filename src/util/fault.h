// Deterministic fault injection for exercising the training-robustness
// layer (core/guard.h) in tests and benches.
//
// A FaultInjector is armed with FaultSpecs describing *where* a fault fires
// (epoch/step filters), *how often* (a total hit budget and an optional
// per-site probability), and is consulted by instrumented code paths via
// ShouldFire(). All randomness comes from the injector's own seeded Rng, so
// a given seed reproduces the exact same fault schedule. The injector never
// fires unless explicitly armed, and the production default is "no injector
// at all" (a null pointer in DaderConfig), so release paths pay one pointer
// compare per instrumented site.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.h"
#include "util/status.h"

namespace dader {

/// \brief The fault classes the trainer/checkpoint/serving paths know how
/// to inject.
enum class FaultKind : int {
  kNanGradient = 0,       ///< overwrite gradients with NaN after backward
  kCorruptCheckpoint = 1, ///< truncate/corrupt a just-written checkpoint file
  kAbortStep = 2,         ///< abort the current epoch mid-step (crash model)
  kExtractorFault = 3,    ///< transient extractor failure during serving
  kExtractorNan = 4,      ///< extractor emits non-finite outputs (serving)
  // Node-scoped kinds consulted by the distributed control plane
  // (src/dist/): `shard` carries the node index, `step` the worker's frame
  // or heartbeat ordinal, so a spec can target "node 2's 40th frame".
  kNodeCrash = 5,     ///< worker drops its listener + connections (dies)
  kNodeHang = 6,      ///< worker keeps connections but stops replying
  kHeartbeatDrop = 7, ///< worker swallows heartbeat pings (still serves)
  kConnReset = 8,     ///< worker resets the connection mid-request
  kSlowNode = 9,      ///< worker delays each reply by FaultSpec::param_ms
  // Coordinator-durability kinds consulted by the snapshot/journal layer
  // (src/dist/snapshot.h): `step` carries the write ordinal.
  kSnapshotTorn = 10,      ///< corrupt the just-written coordinator snapshot
  kCoordinatorCrash = 11,  ///< coordinator dies mid-operation (rolling reload
                           ///< abandons the roll without journaling the end)
};

inline constexpr int kNumFaultKinds = 12;

/// \brief "nan-gradient", "corrupt-checkpoint", "abort-step",
/// "extractor-fault", "extractor-nan", "node-crash", "node-hang",
/// "heartbeat-drop", "conn-reset", "slow-node", "snapshot-torn",
/// "coordinator-crash".
const char* FaultKindName(FaultKind kind);

/// \brief Where and how often one fault kind fires.
///
/// The serving layer reuses the epoch/step filters with its own coordinates:
/// `epoch` matches the batch ordinal and `step` the attempt ordinal, so a
/// spec can target e.g. "the first attempt of every batch". Sharded serving
/// additionally reports its shard index, so a spec can confine a fault
/// storm to one shard and tests can prove breaker isolation.
struct FaultSpec {
  FaultKind kind = FaultKind::kNanGradient;
  int epoch = -1;           ///< fire only at this 1-based epoch (-1 = any)
  int step = -1;            ///< fire only at this 0-based step (-1 = any)
  int shard = -1;           ///< fire only on this serving shard (-1 = any)
  int max_hits = 1;         ///< total firings before the spec disarms
  double probability = 1.0; ///< per-eligible-site firing probability
  /// Fault magnitude for kinds that need one (kSlowNode: per-reply delay in
  /// milliseconds). Ignored by every other kind.
  double param_ms = 0.0;
};

/// \brief Seeded, deterministic fault scheduler. One spec per kind.
///
/// Thread-safe: the serving layer consults ShouldFire from worker threads
/// while tests arm/inspect the injector from the main thread.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xFA017ULL) : rng_(seed) {}

  /// \brief Installs (or replaces) the spec for spec.kind.
  void Arm(const FaultSpec& spec);
  void Disarm(FaultKind kind);

  /// \brief Disarms everything and zeroes all hit counters.
  void Reset();

  bool armed(FaultKind kind) const;

  /// \brief True when `kind` is armed, the site matches the spec's filters,
  /// the hit budget is not exhausted, and the probability draw succeeds.
  /// A true return counts as one hit. Sites that are not shard-scoped (the
  /// trainer) omit `shard`; a shard-filtered spec then never matches them.
  bool ShouldFire(FaultKind kind, int epoch = -1, int step = -1,
                  int shard = -1);

  /// \brief Total firings of `kind` since the last Reset().
  int hits(FaultKind kind) const;

  /// \brief The armed spec's param_ms (0 when the kind is not armed).
  /// Callers pair it with a true ShouldFire, e.g. the slow-node delay.
  double param_ms(FaultKind kind) const;

  // --- file-corruption helpers (used with kCorruptCheckpoint) ---

  /// \brief Truncates the file to keep_fraction of its size (in [0,1)).
  static Status TruncateFile(const std::string& path, double keep_fraction);

  /// \brief XORs the byte at `offset` with 0xFF (payload corruption that
  /// preserves file size, so only a checksum can catch it).
  static Status CorruptByte(const std::string& path, uint64_t offset);

 private:
  mutable std::mutex mu_;
  std::optional<FaultSpec> specs_[kNumFaultKinds];
  int hits_[kNumFaultKinds] = {};
  Rng rng_;
};

}  // namespace dader
