#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace dader {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }
void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace dader
