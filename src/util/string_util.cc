#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

namespace dader {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; O(|a|*|b|) time, O(|b|) space.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t prev_row = row[j];
      const size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      prev_diag = prev_row;
    }
  }
  return row[b.size()];
}

double TokenJaccard(std::string_view a, std::string_view b) {
  const auto ta = SplitWhitespace(a);
  const auto tb = SplitWhitespace(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace dader
