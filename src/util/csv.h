// Minimal RFC-4180-style CSV reading and writing.
//
// Supports quoted fields containing commas, quotes, and newlines. Used to
// import/export generated ER datasets and to persist bench results.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace dader {

/// \brief A parsed CSV document: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// \brief Index of a named column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// \brief Parses CSV text. The first record is treated as the header.
/// Tolerates a leading UTF-8 BOM and CRLF line endings. Fails with
/// InvalidArgument on unterminated quotes or ragged rows.
Result<CsvTable> ParseCsv(const std::string& text);

/// \brief Reads and parses a CSV file. Unreadable files yield an IOError
/// naming the path and the OS-level cause.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// \brief Serializes a table to CSV text, quoting fields as needed.
std::string FormatCsv(const CsvTable& table);

/// \brief Writes a table to a file.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

/// \brief Quotes a single field if it contains separators/quotes/newlines.
std::string CsvEscape(const std::string& field);

}  // namespace dader
