// Small string helpers shared across the text and data substrates.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dader {

/// \brief Splits `s` on any occurrence of `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits `s` on runs of whitespace; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// \brief Copy with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Jaccard similarity of the whitespace-token sets of two strings.
/// Returns 1.0 when both are empty.
double TokenJaccard(std::string_view a, std::string_view b);

/// \brief FNV-1a 64-bit hash, the basis of the hashing vocabulary.
uint64_t Fnv1a64(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dader
