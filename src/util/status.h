// Status / Result<T> error handling in the Arrow / RocksDB idiom.
//
// Library code returns Status (or Result<T>) for recoverable errors such as
// bad input, I/O failures, or shape mismatches at API boundaries. Internal
// invariants use the DADER_CHECK macros from util/check.h instead.

#pragma once

#include <optional>
#include <string>
#include <utility>

namespace dader {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// \brief Human-readable name of a status code ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without crashing the process.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (small string optimization covers the
/// common case) and are annotated [[nodiscard]] so callers cannot silently
/// drop failures.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process with the status message if not OK.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result aborts,
/// so callers must test ok() (or use ValueOr) first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Borrow the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    status_.CheckOK();
    return *value_;
  }
  T& ValueOrDie() & {
    status_.CheckOK();
    return *value_;
  }
  /// \brief Move the contained value out; aborts if this holds an error.
  T ValueOrDie() && {
    status_.CheckOK();
    return std::move(*value_);
  }

  /// \brief The contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;         // OK when value_ is set
  std::optional<T> value_;
};

}  // namespace dader

/// \brief Propagates a non-OK Status to the caller.
#define DADER_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::dader::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (false)

#define DADER_INTERNAL_CONCAT2(a, b) a##b
#define DADER_INTERNAL_CONCAT(a, b) DADER_INTERNAL_CONCAT2(a, b)

/// \brief Evaluates a Result expression, propagating errors, else binds lhs.
#define DADER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie();

#define DADER_ASSIGN_OR_RETURN(lhs, rexpr) \
  DADER_ASSIGN_OR_RETURN_IMPL(DADER_INTERNAL_CONCAT(_res_, __LINE__), lhs, rexpr)
