#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/logging.h"

namespace dader {

namespace {
// Set for the lifetime of WorkerLoop; never reset (workers exit by
// returning from the loop, and the thread ends with it).
thread_local bool t_in_pool_worker = false;
}  // namespace

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  m_tasks_ = metrics.GetCounter("threadpool.tasks.total",
                                "Tasks executed by any thread pool", "tasks");
  m_exceptions_ = metrics.GetCounter(
      "threadpool.exceptions.total",
      "Pool tasks that terminated with an uncaught exception", "tasks");
  m_wait_ms_ = metrics.GetHistogram("threadpool.task.wait_ms",
                                    "Submit-to-dequeue queueing delay", "ms");
  m_run_ms_ = metrics.GetHistogram("threadpool.task.run_ms",
                                   "Task execution time", "ms");
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      DADER_LOG(Error) << "ThreadPool::Submit after Shutdown; task dropped";
      return false;
    }
    tasks_.push(Task{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  task_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::exception_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exception_count_;
}

std::string ThreadPool::last_exception() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_exception_;
}

void ThreadPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  t_in_pool_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const Clock::time_point started = Clock::now();
    m_wait_ms_->Observe(
        std::chrono::duration<double, std::milli>(started - task.enqueued)
            .count());
    // A throwing task must not escape the worker (std::terminate); record
    // it so callers can observe the failure after Wait().
    std::string error;
    try {
      task.fn();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    m_run_ms_->Observe(
        std::chrono::duration<double, std::milli>(Clock::now() - started)
            .count());
    m_tasks_->Increment();
    if (!error.empty()) m_exceptions_->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (!error.empty()) {
        ++exception_count_;
        last_exception_ = error;
      }
    }
    if (!error.empty()) {
      DADER_LOG(Error) << "ThreadPool task threw: " << error;
    }
    done_cv_.notify_all();
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool;
  return &pool;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn, size_t grain) {
  ThreadPool* pool = ThreadPool::Global();
  const size_t workers = pool->num_threads();
  if (workers <= 1 || n <= grain || ThreadPool::InWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

void ParallelChunks(ThreadPool* pool, size_t chunks,
                    const std::function<void(size_t)>& fn) {
  if (chunks == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || chunks == 1 ||
      ThreadPool::InWorkerThread()) {
    for (size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = chunks;
  // Decrements on scope exit so a throwing fn still counts as done (the
  // exception itself propagates to the pool's containment in WorkerLoop).
  // The notify happens under the lock: mu/cv live on the caller's stack,
  // and an unlocked notify could touch the cv after the caller has already
  // observed remaining == 0 and destroyed it.
  struct Countdown {
    std::mutex* mu;
    std::condition_variable* cv;
    size_t* remaining;
    ~Countdown() {
      std::lock_guard<std::mutex> lock(*mu);
      if (--*remaining == 0) cv->notify_one();
    }
  };
  for (size_t c = 0; c < chunks; ++c) {
    const bool submitted = pool->Submit([&mu, &cv, &remaining, &fn, c] {
      Countdown done{&mu, &cv, &remaining};
      fn(c);
    });
    if (!submitted) {  // pool shut down mid-stream: finish inline
      Countdown done{&mu, &cv, &remaining};
      fn(c);
    }
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace dader
