// A fixed-size thread pool and a ParallelFor helper.
//
// On single-core machines (or pools of size 1) ParallelFor degrades to a
// plain loop with no synchronization overhead, so library code can call it
// unconditionally.
//
// Fault containment: a task that throws no longer escapes WorkerLoop (which
// would std::terminate the process) — the exception is caught, counted, and
// its message retained for inspection via exception_count() /
// last_exception(). Submitting to a shut-down pool is a logged no-op rather
// than undefined behavior.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace dader {

/// \brief A simple work-stealing-free thread pool.
class ThreadPool {
 public:
  /// \brief Creates a pool with `num_threads` workers (0 = hardware count).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; tasks may not block on other pool tasks.
  /// Returns false (and logs an error) when the pool has been shut down;
  /// the task is dropped, never run.
  bool Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has completed.
  void Wait();

  /// \brief Drains outstanding tasks and joins the workers. Idempotent;
  /// called by the destructor. After this, Submit is a logged no-op.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Number of tasks that terminated with an uncaught exception
  /// since construction.
  size_t exception_count() const;

  /// \brief what() of the most recent task exception ("" when none yet).
  std::string last_exception() const;

  /// \brief Process-wide default pool, sized to the hardware.
  static ThreadPool* Global();

  /// \brief True when the calling thread is a worker of any ThreadPool.
  /// Library code that parallelizes internally (e.g. the GEMM layer) checks
  /// this and runs serially instead of blocking on nested parallel work: a
  /// Wait issued from inside a worker can never finish, because the waiting
  /// task itself counts as in flight.
  static bool InWorkerThread();

 private:
  // A queued task plus its enqueue time (feeds threadpool.task.wait_ms).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers: new task / shutdown
  std::condition_variable done_cv_;   // signals Wait(): a task finished
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  size_t exception_count_ = 0;
  std::string last_exception_;

  // Process-wide observability series (all pools share them; see
  // docs/OBSERVABILITY.md "threadpool.*").
  obs::Counter* m_tasks_;
  obs::Counter* m_exceptions_;
  obs::Histogram* m_wait_ms_;
  obs::Histogram* m_run_ms_;
};

/// \brief Runs fn(i) for i in [0, n), splitting the range across the global
/// pool in contiguous chunks. Runs inline when the pool has one thread, the
/// range is tiny, or the caller is itself a pool worker. `fn` must be safe
/// to call concurrently on disjoint i.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t grain = 1);

/// \brief Runs fn(c) for every c in [0, chunks) on `pool` and blocks until
/// all of those calls (and only those) have finished. Unlike Submit+Wait,
/// completion is tracked by a per-call countdown, so concurrent callers
/// sharing one pool never wait on each other's tasks and a saturated pool
/// cannot livelock a waiter. Runs inline — plain serial loop, no
/// synchronization — when `pool` is null, single-threaded, shut down, or
/// when the caller is already a pool worker (see InWorkerThread). A task
/// that throws still counts as completed (the pool contains and records the
/// exception).
void ParallelChunks(ThreadPool* pool, size_t chunks,
                    const std::function<void(size_t)>& fn);

}  // namespace dader
