// A fixed-size thread pool and a ParallelFor helper.
//
// On single-core machines (or pools of size 1) ParallelFor degrades to a
// plain loop with no synchronization overhead, so library code can call it
// unconditionally.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dader {

/// \brief A simple work-stealing-free thread pool.
class ThreadPool {
 public:
  /// \brief Creates a pool with `num_threads` workers (0 = hardware count).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; tasks may not block on other pool tasks.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Process-wide default pool, sized to the hardware.
  static ThreadPool* Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers: new task / shutdown
  std::condition_variable done_cv_;   // signals Wait(): a task finished
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs fn(i) for i in [0, n), splitting the range across the global
/// pool in contiguous chunks. Runs inline when the pool has one thread or
/// the range is tiny. `fn` must be safe to call concurrently on disjoint i.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t grain = 1);

}  // namespace dader
