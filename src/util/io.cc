#include "util/io.h"

#include <sys/stat.h>

namespace dader {

uint32_t UpdateCrc32(uint32_t crc, const void* data, size_t n) {
  // Standard CRC-32 (reflected polynomial 0xEDB88320), table generated once.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<BinaryWriter> BinaryWriter::Open(const std::string& path,
                                        const std::string& magic,
                                        uint32_t version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(std::move(out));
  w.WriteString(magic);
  w.WriteU32(version);
  return w;
}

void BinaryWriter::WriteRaw(const void* p, size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  crc_ = UpdateCrc32(crc_, p, n);
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}
void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}
void BinaryWriter::WriteI64s(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(int64_t));
}
void BinaryWriter::WriteI8s(const std::vector<int8_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size());
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) return Status::IOError("binary write failed");
  out_.close();
  return Status::OK();
}

Status BinaryWriter::WriteCrcFooterAndClose() {
  const uint32_t footer = crc_;
  // The footer bytes are excluded from the checksum they carry.
  out_.write(reinterpret_cast<const char*>(&footer), sizeof(footer));
  return Close();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        const std::string& magic,
                                        uint32_t expected_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader r(std::move(in));
  DADER_ASSIGN_OR_RETURN(std::string got_magic, r.ReadString());
  if (got_magic != magic) {
    return Status::InvalidArgument("bad magic in " + path + ": expected '" +
                                   magic + "', got '" + got_magic + "'");
  }
  DADER_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != expected_version) {
    return Status::InvalidArgument(
        "version mismatch in " + path + ": expected " +
        std::to_string(expected_version) + ", got " + std::to_string(version));
  }
  return r;
}

Result<BinaryReader> BinaryReader::OpenVersionRange(const std::string& path,
                                                    const std::string& magic,
                                                    uint32_t min_version,
                                                    uint32_t max_version,
                                                    uint32_t* version_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader r(std::move(in));
  DADER_ASSIGN_OR_RETURN(std::string got_magic, r.ReadString());
  if (got_magic != magic) {
    return Status::InvalidArgument("bad magic in " + path + ": expected '" +
                                   magic + "', got '" + got_magic + "'");
  }
  DADER_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version < min_version || version > max_version) {
    return Status::InvalidArgument(
        "version mismatch in " + path + ": expected " +
        std::to_string(min_version) + ".." + std::to_string(max_version) +
        ", got " + std::to_string(version));
  }
  if (version_out != nullptr) *version_out = version;
  return r;
}

Status BinaryReader::CheckStream() {
  if (!in_) return Status::IOError("binary read past end of file");
  return Status::OK();
}

Status BinaryReader::ReadRaw(void* p, size_t n) {
  in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  DADER_RETURN_NOT_OK(CheckStream());
  crc_ = UpdateCrc32(crc_, p, n);
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  DADER_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}
Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  DADER_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}
Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  DADER_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}
Result<float> BinaryReader::ReadF32() {
  float v = 0;
  DADER_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}
Result<std::string> BinaryReader::ReadString() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 32)) return Status::InvalidArgument("string too large");
  std::string s(n, '\0');
  DADER_RETURN_NOT_OK(ReadRaw(s.data(), n));
  return s;
}
Result<std::vector<float>> BinaryReader::ReadFloats() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 34)) return Status::InvalidArgument("float array too large");
  std::vector<float> v(n);
  DADER_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(float)));
  return v;
}
Result<std::vector<int64_t>> BinaryReader::ReadI64s() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 34)) return Status::InvalidArgument("int array too large");
  std::vector<int64_t> v(n);
  DADER_RETURN_NOT_OK(ReadRaw(v.data(), n * sizeof(int64_t)));
  return v;
}
Result<std::vector<int8_t>> BinaryReader::ReadI8s() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 34)) return Status::InvalidArgument("int8 array too large");
  std::vector<int8_t> v(n);
  DADER_RETURN_NOT_OK(ReadRaw(v.data(), n));
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status BinaryReader::VerifyCrcFooter(const std::string& context) {
  const uint32_t expected = crc_;
  uint32_t stored = 0;
  // Raw read: the footer must not fold into the checksum being verified.
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in_) {
    return Status::IOError("truncated file: missing CRC footer in " + context);
  }
  if (stored != expected) {
    return Status::IOError("CRC mismatch in " + context +
                           ": payload is corrupt");
  }
  return Status::OK();
}

}  // namespace dader
