#include "util/io.h"

#include <sys/stat.h>

namespace dader {

Result<BinaryWriter> BinaryWriter::Open(const std::string& path,
                                        const std::string& magic,
                                        uint32_t version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BinaryWriter w(std::move(out));
  w.WriteString(magic);
  w.WriteU32(version);
  return w;
}

void BinaryWriter::WriteU32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteU64(uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteI64(int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteF32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void BinaryWriter::WriteI64s(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int64_t)));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) return Status::IOError("binary write failed");
  out_.close();
  return Status::OK();
}

Result<BinaryReader> BinaryReader::Open(const std::string& path,
                                        const std::string& magic,
                                        uint32_t expected_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  BinaryReader r(std::move(in));
  DADER_ASSIGN_OR_RETURN(std::string got_magic, r.ReadString());
  if (got_magic != magic) {
    return Status::InvalidArgument("bad magic in " + path + ": expected '" +
                                   magic + "', got '" + got_magic + "'");
  }
  DADER_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != expected_version) {
    return Status::InvalidArgument(
        "version mismatch in " + path + ": expected " +
        std::to_string(expected_version) + ", got " + std::to_string(version));
  }
  return r;
}

Status BinaryReader::CheckStream() {
  if (!in_) return Status::IOError("binary read past end of file");
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}
Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}
Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}
Result<float> BinaryReader::ReadF32() {
  float v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}
Result<std::string> BinaryReader::ReadString() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 32)) return Status::InvalidArgument("string too large");
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  DADER_RETURN_NOT_OK(CheckStream());
  return s;
}
Result<std::vector<float>> BinaryReader::ReadFloats() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 34)) return Status::InvalidArgument("float array too large");
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}
Result<std::vector<int64_t>> BinaryReader::ReadI64s() {
  DADER_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > (1ULL << 34)) return Status::InvalidArgument("int array too large");
  std::vector<int64_t> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(int64_t)));
  DADER_RETURN_NOT_OK(CheckStream());
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace dader
