// Deterministic random number generation.
//
// Every stochastic component of the library takes an explicit seed and draws
// from an Rng instance; nothing uses std::rand or an unseeded engine, so a
// fixed seed reproduces an entire experiment bit-for-bit.

#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dader {

/// \brief SplitMix64 — used to expand a single 64-bit seed into the state of
/// a larger generator. Passes through every value exactly once per period.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** pseudo-random generator with convenience samplers.
///
/// Fast, high-quality, and copyable (snapshotting generator state is cheap),
/// which the trainers use to replay minibatch orderings.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// \brief Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    DADER_CHECK_GT(n, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % n;
    }
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    DADER_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// \brief Standard normal via Box-Muller.
  double NextGaussian();

  /// \brief Bernoulli draw with success probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[NextBelow(i)]);
    }
  }

  /// \brief Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    DADER_CHECK(!v.empty());
    return v[NextBelow(v.size())];
  }

  /// \brief k distinct indices sampled uniformly from [0, n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// \brief Independent child generator; children with different tags never
  /// collide, so parallel components can derive private streams.
  Rng Fork(uint64_t tag) {
    SplitMix64 sm(NextUint64() ^ (tag * 0x9e3779b97f4a7c15ULL + 1));
    Rng child(sm.Next());
    return child;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dader
