// Injectable time source for components that pace themselves with sleeps:
// retry backoff, heartbeat loops, slow-node fault delays.
//
// Production code uses Clock::Real(), a steady_clock wrapper, so wall-clock
// adjustments cannot wedge anything. Tests inject a ManualClock, whose
// SleepForMs advances virtual time instead of blocking — a retry schedule
// or heartbeat loop then "runs" instantly and deterministically, which is
// what makes retry-timing and membership tests non-flaky by construction.
// The same instance is shared between the serving retry path and the dist
// control plane's heartbeats, so one injected clock drives both.
//
// Scope: a Clock governs pacing (when to sleep, for how long). Socket-level
// deadlines (poll/recv timeouts) are inherently real-time and stay on the
// OS clock regardless of the injected instance.

#pragma once

#include <mutex>

namespace dader::util {

/// \brief Monotonic time + sleep, injectable for tests.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Monotonic milliseconds since an arbitrary epoch.
  virtual double NowMs() = 0;

  /// \brief Pauses the caller for `ms` (no-op when ms <= 0).
  virtual void SleepForMs(double ms) = 0;

  /// \brief Process-wide steady-clock instance; never null.
  static Clock* Real();
};

/// \brief Test clock: NowMs is a counter that only moves when told to.
///
/// SleepForMs advances the counter by the requested amount, so a loop that
/// paces itself through this clock free-runs deterministically without ever
/// touching the scheduler. Thread-safe.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_ms = 0.0) : now_ms_(start_ms) {}

  double NowMs() override;
  void SleepForMs(double ms) override;

  /// \brief Moves time forward by `ms` (negative is ignored).
  void AdvanceMs(double ms);

  /// \brief Total virtual milliseconds slept through this clock.
  double slept_ms() const;

 private:
  mutable std::mutex mu_;
  double now_ms_;
  double slept_ms_ = 0.0;
};

}  // namespace dader::util
