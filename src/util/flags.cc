#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace dader {

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, help};
}

void FlagParser::DefineInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(default_value), help};
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(default_value), help};
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false", help};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt:
      std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects an integer, got '" +
                                       value + "'");
      }
      break;
    case Type::kDouble:
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name + " expects a number, got '" +
                                       value + "'");
      }
      break;
    case Type::kBool:
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        return Status::InvalidArgument("flag --" + name + " expects true/false");
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = value;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      DADER_RETURN_NOT_OK(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + arg + " needs a value");
      }
      DADER_RETURN_NOT_OK(SetValue(arg, argv[++i]));
    }
  }
  return Status::OK();
}

const std::string& FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  DADER_CHECK_MSG(it != flags_.end(), name.c_str());
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = GetString(name);
  return v == "true" || v == "1";
}

std::string FlagParser::Help() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.value.c_str());
  }
  return out;
}

}  // namespace dader
