#include "data/worlds.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"
#include "util/string_util.h"

namespace dader::data {

std::string AbbreviateName(const std::string& full_name) {
  auto words = SplitWhitespace(full_name);
  if (words.size() < 2) return full_name;
  std::string out;
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    out += words[i].substr(0, 1);
    out += ' ';
  }
  out += words.back();
  return out;
}

std::string DropRandomWords(const std::string& text, double p, Rng* rng) {
  auto words = SplitWhitespace(text);
  if (words.size() <= 1) return text;
  std::vector<std::string> kept;
  for (auto& w : words) {
    if (!rng->NextBool(p)) kept.push_back(std::move(w));
  }
  if (kept.empty()) kept.push_back(words.front());
  return Join(kept, " ");
}

std::string IntroduceTypo(const std::string& text, Rng* rng) {
  auto words = SplitWhitespace(text);
  std::vector<size_t> eligible;
  for (size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= 4) eligible.push_back(i);
  }
  if (eligible.empty()) return text;
  std::string& w = words[rng->Choice(eligible)];
  const size_t pos = 1 + rng->NextBelow(w.size() - 2);
  switch (rng->NextBelow(3)) {
    case 0:  // substitution
      w[pos] = static_cast<char>('a' + rng->NextBelow(26));
      break;
    case 1:  // deletion
      w.erase(pos, 1);
      break;
    default:  // transposition
      std::swap(w[pos], w[pos - 1]);
      break;
  }
  return Join(words, " ");
}

std::string SwapAdjacentWords(const std::string& text, Rng* rng) {
  auto words = SplitWhitespace(text);
  if (words.size() < 2) return text;
  const size_t i = rng->NextBelow(words.size() - 1);
  std::swap(words[i], words[i + 1]);
  return Join(words, " ");
}

std::string TruncateWords(const std::string& text, size_t max_words) {
  auto words = SplitWhitespace(text);
  if (words.size() <= max_words) return text;
  words.resize(max_words);
  return Join(words, " ");
}

std::string PerturbNumber(const std::string& number, double rel_noise,
                          Rng* rng) {
  char* end = nullptr;
  const double v = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') return number;
  const double factor = 1.0 + (rng->NextDouble() * 2.0 - 1.0) * rel_noise;
  return StrFormat("%.2f", v * factor);
}

std::string PerturbText(const std::string& text, const NoiseProfile& profile,
                        Rng* rng) {
  std::string out = text;
  if (profile.drop_word_p > 0.0) out = DropRandomWords(out, profile.drop_word_p, rng);
  if (profile.swap_p > 0.0 && rng->NextBool(profile.swap_p)) {
    out = SwapAdjacentWords(out, rng);
  }
  if (profile.typo_p > 0.0 && rng->NextBool(profile.typo_p)) {
    out = IntroduceTypo(out, rng);
  }
  return out;
}

const std::string& SampleWord(const std::vector<std::string>& pool, Rng* rng) {
  return rng->Choice(pool);
}

std::string SampleWords(const std::vector<std::string>& pool, size_t k,
                        Rng* rng) {
  DADER_CHECK_GT(k, 0u);
  k = std::min(k, pool.size());
  std::string out;
  for (size_t idx : rng->SampleIndices(pool.size(), k)) {
    if (!out.empty()) out += ' ';
    out += pool[idx];
  }
  return out;
}

std::string RandomDigits(size_t n, Rng* rng) {
  DADER_CHECK_GT(n, 0u);
  std::string out;
  out.push_back(static_cast<char>('1' + rng->NextBelow(9)));
  for (size_t i = 1; i < n; ++i) {
    out.push_back(static_cast<char>('0' + rng->NextBelow(10)));
  }
  return out;
}

std::string RandomModelCode(Rng* rng) {
  std::string out;
  const size_t letters = 1 + rng->NextBelow(3);
  for (size_t i = 0; i < letters; ++i) {
    out.push_back(static_cast<char>('a' + rng->NextBelow(26)));
  }
  out += RandomDigits(3 + rng->NextBelow(2), rng);
  if (rng->NextBool(0.4)) {
    out.push_back(static_cast<char>('a' + rng->NextBelow(26)));
  }
  return out;
}

std::string RandomPhone(Rng* rng, char separator) {
  return RandomDigits(3, rng) + separator + RandomDigits(3, rng) + '-' +
         RandomDigits(4, rng);
}

std::string RandomPersonName(Rng* rng) {
  return SampleWord(pools::kFirstNames, rng) + " " +
         SampleWord(pools::kLastNames, rng);
}

namespace pools {

const std::vector<std::string> kBrands = {
    "samsung", "sony", "panasonic", "toshiba", "canon", "nikon", "hp",
    "epson", "brother", "logitech", "linksys", "netgear", "belkin", "apple",
    "dell", "lenovo", "asus", "acer", "philips", "sharp", "sanyo", "kodak",
    "olympus", "garmin", "jvc", "pioneer", "kenwood", "yamaha", "bose",
    "sandisk", "kingston", "seagate", "maxtor", "iomega", "tripp", "balt",
    "fellowes", "mayline", "hon", "safco"};

const std::vector<std::string> kProductNouns = {
    "television", "monitor", "printer", "router", "camera", "camcorder",
    "keyboard", "mouse", "speaker", "headphone", "projector", "scanner",
    "receiver", "subwoofer", "turntable", "laminator", "shredder", "easel",
    "cartridge", "adapter", "charger", "battery", "cable", "drive",
    "player", "recorder", "radio", "telephone", "microphone", "webcam"};

const std::vector<std::string> kProductAdjectives = {
    "black", "white", "silver", "portable", "wireless", "digital", "compact",
    "professional", "deluxe", "ultra", "premium", "slim", "mini", "dual",
    "widescreen", "flat", "panel", "high", "speed", "rechargeable"};

const std::vector<std::string> kProductCategories = {
    "televisions", "printers", "networking", "cameras", "audio", "stationery",
    "office supplies", "computer accessories", "home theater", "storage",
    "cleaning repair", "laminating supplies", "telephones", "projectors"};

const std::vector<std::string> kMarketingWords = {
    "new", "genuine", "original", "series", "edition", "pack", "kit",
    "bundle", "refurbished", "retail", "oem", "inch", "with", "for"};

const std::vector<std::string> kFeatureWords = {
    "resolution", "contrast", "ratio", "response", "dynamic", "hdmi", "usb",
    "ethernet", "bluetooth", "zoom", "optical", "megapixel", "wattage",
    "channel", "surround", "stereo", "duplex", "cartridge", "capacity",
    "gigabyte", "memory", "warranty", "energy", "star"};

const std::vector<std::string> kFirstNames = {
    "michael",  "david",  "john",   "wei",    "jian",   "maria",  "anna",
    "peter",    "thomas", "robert", "james",  "susan",  "laura",  "rakesh",
    "surajit",  "hector", "jeffrey", "jennifer", "christos", "joseph",
    "richard",  "daniel", "kevin",  "elena",  "carlo",  "stefano", "divesh",
    "raghu",    "divyakant", "timos"};

const std::vector<std::string> kLastNames = {
    "stonebraker", "dewitt",   "gray",      "chaudhuri", "garcia",  "molina",
    "ullman",      "widom",    "abiteboul", "vianu",     "naughton", "carey",
    "franklin",    "hellerstein", "madden", "agrawal",   "srikant", "ramakrishnan",
    "gehrke",      "faloutsos", "han",      "yu",        "wang",    "li",
    "zhang",       "chen",     "kossmann",  "kemper",    "neumann", "boncz"};

const std::vector<std::string> kPaperTitleWords = {
    "query",       "optimization", "database",   "distributed", "parallel",
    "transaction", "processing",   "indexing",   "mining",      "learning",
    "scalable",    "adaptive",     "efficient",  "approximate", "streaming",
    "graph",       "spatial",      "temporal",   "relational",  "semantic",
    "integration", "cleaning",     "resolution", "entity",      "schema",
    "matching",    "join",         "aggregation", "storage",    "memory",
    "concurrency", "recovery",     "benchmark",  "workload",    "sampling"};

const std::vector<std::string> kVenuesFull = {
    "international conference on management of data",
    "very large data bases",
    "international conference on data engineering",
    "symposium on principles of database systems",
    "conference on information and knowledge management",
    "knowledge discovery and data mining",
    "extending database technology",
    "transactions on database systems",
    "transactions on knowledge and data engineering",
    "journal on very large data bases"};

const std::vector<std::string> kVenuesAbbrev = {
    "sigmod", "vldb", "icde", "pods", "cikm",
    "kdd",    "edbt", "tods", "tkde", "vldbj"};

const std::vector<std::string> kRestaurantFirst = {
    "golden", "blue",  "royal",  "little", "grand", "old",    "casa",
    "chez",   "la",    "el",     "villa",  "cafe",  "bistro", "palace",
    "garden", "ocean", "harbor", "sunset", "spice", "lucky"};

const std::vector<std::string> kRestaurantSecond = {
    "dragon", "lotus", "olive", "pepper", "table", "kitchen", "grill",
    "house",  "corner", "terrace", "tavern", "diner", "room", "place",
    "garden", "star",  "crown", "gate",   "bridge", "market"};

const std::vector<std::string> kCities = {
    "new york",     "los angeles", "chicago",  "san francisco", "boston",
    "seattle",      "atlanta",     "houston",  "philadelphia",  "miami",
    "denver",       "portland",    "austin",   "san diego",     "dallas"};

const std::vector<std::string> kStreets = {
    "main st", "oak ave",   "maple dr",   "broadway", "market st",
    "pine st", "sunset blvd", "lake ave", "park ave", "hill rd",
    "5th ave", "2nd st",    "union sq",   "grove st", "river rd"};

const std::vector<std::string> kCuisines = {
    "italian", "chinese", "mexican", "french",  "japanese", "thai",
    "indian",  "greek",   "spanish", "american", "seafood", "steakhouse",
    "vegetarian", "bbq",  "sushi"};

const std::vector<std::string> kSongWords = {
    "love",  "night", "heart", "fire",  "dream", "dance", "summer",
    "rain",  "light", "shadow", "river", "home",  "road",  "star",
    "blue",  "golden", "broken", "wild", "young", "forever", "memory",
    "ghost", "echo",  "silver", "midnight"};

const std::vector<std::string> kArtistWords = {
    "the",     "crows",  "velvet", "electric", "midnight", "foxes",
    "atomic",  "neon",   "silver", "wolves",   "echoes",   "drifters",
    "saints",  "rebels", "queens", "kings",    "riders",   "strangers",
    "birds",   "tides"};

const std::vector<std::string> kGenres = {
    "pop",  "rock", "country", "jazz", "blues", "electronic", "folk",
    "rap",  "soul", "classical", "indie", "metal", "reggae", "latin"};

const std::vector<std::string> kLabels = {
    "universal records", "sony music", "warner bros", "emi", "atlantic",
    "columbia", "capitol", "island records", "interscope", "motown"};

const std::vector<std::string> kMovieWords = {
    "return", "night",  "city",   "last",   "dark",  "first", "lost",
    "king",   "queen",  "summer", "winter", "blood", "iron",  "golden",
    "secret", "silent", "broken", "rising", "fallen", "eternal", "shadow",
    "storm",  "crystal", "crimson", "winds"};

const std::vector<std::string> kBookWords = {
    "history", "introduction", "guide",  "art",    "science", "modern",
    "complete", "practical",   "theory", "design", "principles", "advanced",
    "handbook", "essential",   "fundamentals", "analysis", "systems",
    "cooking",  "garden",      "journey", "secrets", "stories", "world",
    "ancient",  "future"};

const std::vector<std::string> kPublishers = {
    "penguin", "random house", "harper collins", "simon schuster",
    "macmillan", "oxford press", "cambridge press", "wiley", "springer",
    "oreilly", "addison wesley", "mcgraw hill"};

const std::vector<std::string> kLanguages = {
    "english", "spanish", "french", "german", "italian", "chinese"};

const std::vector<std::string> kWdcComputerWords = {
    "laptop", "desktop", "motherboard", "processor", "graphics", "card",
    "ssd",    "ram",     "ddr4",        "intel",     "amd",      "ryzen",
    "core",   "gaming",  "workstation", "notebook",  "chassis",  "cooler"};

const std::vector<std::string> kWdcCameraWords = {
    "dslr",   "mirrorless", "lens",   "zoom",    "aperture", "tripod",
    "flash",  "sensor",     "full",   "frame",   "telephoto", "macro",
    "camera", "body",       "kit",    "stabilizer", "viewfinder", "shutter"};

const std::vector<std::string> kWdcWatchWords = {
    "watch",    "chronograph", "automatic", "quartz", "leather", "strap",
    "stainless", "steel",      "dial",      "sapphire", "bezel", "bracelet",
    "diver",    "pilot",       "luminous",  "skeleton", "tourbillon", "gmt"};

const std::vector<std::string> kWdcShoeWords = {
    "sneaker", "running", "trail",  "boot",   "leather", "suede",
    "canvas",  "lace",    "sole",   "cushion", "athletic", "training",
    "casual",  "hiking",  "sandal", "slip",    "waterproof", "mesh"};

const std::vector<std::string> kWdcSharedWords = {
    "mens", "womens", "black", "white", "blue", "red", "pro", "plus",
    "edition", "series", "size", "new", "sale", "2020", "premium", "classic"};

}  // namespace pools
}  // namespace dader::data
