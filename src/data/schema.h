// Relational building blocks: Schema, Record, Table.
//
// ER operates over two tables A and B whose schemas may differ (different
// attribute names and counts) — the source of schema-level domain shift the
// paper studies. Values are strings; NULL is the empty string, as in the
// DeepMatcher benchmark CSVs.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "text/serializer.h"
#include "util/check.h"

namespace dader::data {

/// \brief Ordered attribute names of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes)
      : attributes_(std::move(attributes)) {}

  size_t size() const { return attributes_.size(); }
  const std::string& attribute(size_t i) const {
    DADER_CHECK_LT(i, attributes_.size());
    return attributes_[i];
  }
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// \brief Index of `name`, or -1 when absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < attributes_.size(); ++i) {
      if (attributes_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<std::string> attributes_;
};

/// \brief One tuple: values aligned with a Schema. Empty string == NULL.
class Record {
 public:
  Record() = default;
  explicit Record(std::vector<std::string> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const std::string& value(size_t i) const {
    DADER_CHECK_LT(i, values_.size());
    return values_[i];
  }
  std::vector<std::string>& values() { return values_; }
  const std::vector<std::string>& values() const { return values_; }

  void set_value(size_t i, std::string v) {
    DADER_CHECK_LT(i, values_.size());
    values_[i] = std::move(v);
  }

  /// \brief (attribute, value) pairs for the serializer.
  text::AttrValueList ToAttrValues(const Schema& schema) const {
    DADER_CHECK_EQ(schema.size(), values_.size());
    text::AttrValueList out;
    out.reserve(values_.size());
    for (size_t i = 0; i < values_.size(); ++i) {
      out.emplace_back(schema.attribute(i), values_[i]);
    }
    return out;
  }

 private:
  std::vector<std::string> values_;
};

/// \brief A named relation: schema + rows.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  const Record& row(size_t i) const {
    DADER_CHECK_LT(i, rows_.size());
    return rows_[i];
  }

  void AddRow(Record r) {
    DADER_CHECK_EQ(r.size(), schema_.size());
    rows_.push_back(std::move(r));
  }

  const std::vector<Record>& rows() const { return rows_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Record> rows_;
};

}  // namespace dader::data
