// ERDataset: a labeled (or to-be-labeled) collection of entity pairs drawn
// from two tables, plus splitting, statistics, and CSV round-tripping.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace dader::data {

/// \brief One candidate pair with an optional 0/1 match label.
struct LabeledPair {
  Record a;
  Record b;
  int label = -1;  ///< 1 match, 0 non-match, -1 unlabeled

  bool labeled() const { return label >= 0; }
};

/// \brief Train/validation/test split of a dataset.
struct DatasetSplits;

/// \brief A full ER matching dataset (the unit of Table 2).
class ERDataset {
 public:
  ERDataset() = default;
  ERDataset(std::string name, std::string domain, Schema schema_a,
            Schema schema_b)
      : name_(std::move(name)),
        domain_(std::move(domain)),
        schema_a_(std::move(schema_a)),
        schema_b_(std::move(schema_b)) {}

  const std::string& name() const { return name_; }
  const std::string& domain() const { return domain_; }
  const Schema& schema_a() const { return schema_a_; }
  const Schema& schema_b() const { return schema_b_; }

  size_t size() const { return pairs_.size(); }
  const LabeledPair& pair(size_t i) const {
    DADER_CHECK_LT(i, pairs_.size());
    return pairs_[i];
  }
  const std::vector<LabeledPair>& pairs() const { return pairs_; }

  void AddPair(LabeledPair p) {
    DADER_CHECK_EQ(p.a.size(), schema_a_.size());
    DADER_CHECK_EQ(p.b.size(), schema_b_.size());
    pairs_.push_back(std::move(p));
  }

  /// \brief Number of labeled matching pairs.
  size_t NumMatches() const;

  /// \brief Fraction of labeled pairs that are matches (0 if unlabeled).
  double MatchRate() const;

  /// \brief Copy with all labels removed — the "unlabeled target" D^T.
  ERDataset WithoutLabels() const;

  /// \brief Copy holding only the pairs at `indices`.
  ERDataset Subset(const std::vector<size_t>& indices) const;

  /// \brief Shuffled split by ratios (must sum to ~1). The paper uses
  /// validation:test = 1:9 on the target and 3:1:1 for supervised baselines.
  DatasetSplits Split(double train_frac, double valid_frac, double test_frac,
                      Rng* rng) const;

  /// \brief Serializes pairs to CSV ("a_<attr>,...,b_<attr>,...,label").
  Status ToCsvFile(const std::string& path) const;

  /// \brief Reads a dataset written by ToCsvFile. Schemas are recovered
  /// from the a_/b_ column-name prefixes.
  static Result<ERDataset> FromCsvFile(const std::string& path,
                                       const std::string& name,
                                       const std::string& domain);

 private:
  std::string name_;
  std::string domain_;
  Schema schema_a_;
  Schema schema_b_;
  std::vector<LabeledPair> pairs_;
};

struct DatasetSplits {
  ERDataset train;
  ERDataset valid;
  ERDataset test;
};

}  // namespace dader::data
