// Token-overlap blocking: the candidate-generation step of the classic ER
// pipeline (Section 2). The paper focuses on matching, but a complete system
// needs blocking; examples/er_pipeline.cpp runs the end-to-end flow
// (generate tables -> block -> match with a DADER-trained model).

#pragma once

#include <vector>

#include "data/schema.h"

namespace dader::data {

/// \brief Blocking configuration.
struct BlockingConfig {
  /// Minimum number of shared word tokens between two records.
  size_t min_shared_tokens = 2;
  /// Only tokens at least this long participate (drops punctuation/stop
  /// fragments).
  size_t min_token_length = 3;
  /// Cap on candidates per left record (keeps the candidate set tractable).
  size_t max_candidates_per_record = 50;
};

/// \brief A candidate pair produced by blocking.
struct CandidatePair {
  size_t index_a;
  size_t index_b;
  size_t shared_tokens;
};

/// \brief Overlap blocker with an inverted token index over table B.
///
/// Complexity: O(total tokens) to index, then for each A record the union of
/// posting lists of its tokens. High recall on datasets where matches share
/// surface tokens — which holds for all generated benchmark datasets.
class OverlapBlocker {
 public:
  explicit OverlapBlocker(BlockingConfig config = {}) : config_(config) {}

  /// \brief All candidate pairs between `a` and `b` meeting the overlap
  /// threshold, sorted by (index_a, descending shared_tokens).
  std::vector<CandidatePair> GenerateCandidates(const Table& a,
                                                const Table& b) const;

  /// \brief Recall of a candidate set against gold matching (a,b) index
  /// pairs: fraction of gold pairs retained.
  static double Recall(const std::vector<CandidatePair>& candidates,
                       const std::vector<std::pair<size_t, size_t>>& gold);

 private:
  BlockingConfig config_;
};

}  // namespace dader::data
