#include "data/generators.h"

#include <algorithm>

#include "util/string_util.h"

namespace dader::data {

namespace {

// Convenience accessor: canonical entities always carry the fields their
// generator wrote, so a missing field is a programmer error.
const std::string& Get(const Entity& e, const std::string& key) {
  auto it = e.find(key);
  DADER_CHECK_MSG(it != e.end(), key.c_str());
  return it->second;
}

std::string MaybeNull(const std::string& value, double null_p, Rng* rng) {
  return rng->NextBool(null_p) ? std::string() : value;
}

// ---------------------------------------------------------------------------
// Product domain: Walmart-Amazon (WA) and Abt-Buy (AB)
// ---------------------------------------------------------------------------

// Canonical product entity fields: brand, adj, noun, model, category, price,
// features (space-separated feature words).
class ProductWorld {
 public:
  static Entity Sample(Rng* rng) {
    Entity e;
    e["brand"] = SampleWord(pools::kBrands, rng);
    e["adj"] = SampleWords(pools::kProductAdjectives, 1 + rng->NextBelow(2), rng);
    e["noun"] = SampleWord(pools::kProductNouns, rng);
    e["model"] = RandomModelCode(rng);
    e["category"] = SampleWord(pools::kProductCategories, rng);
    e["price"] = StrFormat("%.2f", 10.0 + rng->NextDouble() * 1990.0);
    e["features"] = SampleWords(pools::kFeatureWords, 3 + rng->NextBelow(3), rng);
    return e;
  }

  // Same brand & category (often same noun): a hard negative.
  static Entity Mutate(const Entity& in, Rng* rng) {
    Entity e = in;
    e["model"] = RandomModelCode(rng);
    if (rng->NextBool(0.5)) {
      e["adj"] = SampleWords(pools::kProductAdjectives, 1 + rng->NextBelow(2), rng);
    }
    if (rng->NextBool(0.3)) e["noun"] = SampleWord(pools::kProductNouns, rng);
    e["price"] = StrFormat("%.2f", 10.0 + rng->NextDouble() * 1990.0);
    e["features"] = SampleWords(pools::kFeatureWords, 3 + rng->NextBelow(3), rng);
    return e;
  }

  static std::string Title(const Entity& e) {
    return Get(e, "brand") + " " + Get(e, "adj") + " " + Get(e, "noun") + " " +
           Get(e, "model");
  }
};

class WalmartAmazonGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override {
    return Schema({"title", "category", "brand", "modelno", "price"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override { return ProductWorld::Sample(rng); }
  Entity MutateEntity(const Entity& e, Rng* rng) const override {
    return ProductWorld::Mutate(e, rng);
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    // Walmart style: clean structured fields.
    NoiseProfile noise{.drop_word_p = 0.08, .typo_p = 0.05, .swap_p = 0.05};
    return Record({PerturbText(ProductWorld::Title(e), noise, rng),
                   Get(e, "category"), MaybeNull(Get(e, "brand"), 0.10, rng),
                   MaybeNull(Get(e, "model"), 0.15, rng), Get(e, "price")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    // Amazon style: marketing suffixes, more NULLs, noisy price.
    NoiseProfile noise{.drop_word_p = 0.10, .typo_p = 0.05, .swap_p = 0.10};
    std::string title = ProductWorld::Title(e);
    if (rng->NextBool(0.5)) {
      title += " " + SampleWords(pools::kMarketingWords, 1 + rng->NextBelow(2), rng);
    }
    return Record({PerturbText(title, noise, rng),
                   MaybeNull(Get(e, "category"), 0.25, rng),
                   MaybeNull(Get(e, "brand"), 0.30, rng),
                   MaybeNull(Get(e, "model"), 0.30, rng),
                   PerturbNumber(Get(e, "price"), 0.04, rng)});
  }
};

class AbtBuyGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override {
    return Schema({"name", "description", "price"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override { return ProductWorld::Sample(rng); }
  Entity MutateEntity(const Entity& e, Rng* rng) const override {
    return ProductWorld::Mutate(e, rng);
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    // Abt style: long textual descriptions, price often missing (Figure 2).
    // Views are much noisier than Walmart-Amazon's, so matching pairs share
    // fewer tokens here — the textual-style shift Section 6.2.1 discusses.
    NoiseProfile noise{.drop_word_p = 0.18, .typo_p = 0.10, .swap_p = 0.10};
    const std::string desc = Get(e, "adj") + " " + Get(e, "noun") + " " +
                             Get(e, "features") + " " + Get(e, "model");
    return Record({PerturbText(ProductWorld::Title(e), noise, rng),
                   PerturbText(desc, noise, rng),
                   MaybeNull(Get(e, "price"), 0.35, rng)});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    NoiseProfile noise{.drop_word_p = 0.30, .typo_p = 0.12, .swap_p = 0.12};
    std::string name = ProductWorld::Title(e);
    if (rng->NextBool(0.6)) {
      name += " " + SampleWords(pools::kMarketingWords, 1 + rng->NextBelow(2), rng);
    }
    const std::string desc =
        Get(e, "features") + " " + SampleWords(pools::kFeatureWords, 3, rng);
    return Record({PerturbText(name, noise, rng),
                   MaybeNull(PerturbText(desc, noise, rng), 0.25, rng),
                   MaybeNull(PerturbNumber(Get(e, "price"), 0.04, rng), 0.25, rng)});
  }
};

// ---------------------------------------------------------------------------
// Citation domain: DBLP-Scholar (DS) and DBLP-ACM (DA)
// ---------------------------------------------------------------------------

// Canonical fields: title, authors (comma-joined full names), venue_idx
// (index into the venue pools), year.
class CitationWorld {
 public:
  static Entity Sample(Rng* rng) {
    Entity e;
    e["title"] = SampleWords(pools::kPaperTitleWords, 5 + rng->NextBelow(4), rng);
    const size_t n_authors = 1 + rng->NextBelow(3);
    std::vector<std::string> authors;
    for (size_t i = 0; i < n_authors; ++i) authors.push_back(RandomPersonName(rng));
    e["authors"] = Join(authors, " , ");
    e["venue_idx"] = std::to_string(rng->NextBelow(pools::kVenuesFull.size()));
    e["year"] = std::to_string(1985 + rng->NextBelow(36));
    return e;
  }

  // Same venue and year, different title/authors: a plausible co-located
  // paper — a hard negative.
  static Entity Mutate(const Entity& in, Rng* rng) {
    Entity e = in;
    // Resample a few title words, keep some overlap.
    auto words = SplitWhitespace(e["title"]);
    const size_t n_change = 2 + rng->NextBelow(words.size() > 3 ? words.size() - 2 : 1);
    for (size_t i = 0; i < std::min(n_change, words.size()); ++i) {
      words[rng->NextBelow(words.size())] = SampleWord(pools::kPaperTitleWords, rng);
    }
    e["title"] = Join(words, " ");
    if (rng->NextBool(0.7)) {
      std::vector<std::string> authors;
      const size_t n_authors = 1 + rng->NextBelow(3);
      for (size_t i = 0; i < n_authors; ++i) authors.push_back(RandomPersonName(rng));
      e["authors"] = Join(authors, " , ");
    }
    return e;
  }

  static std::string AbbrevAuthors(const std::string& authors) {
    std::vector<std::string> out;
    for (const auto& name : Split(authors, ',')) {
      out.push_back(AbbreviateName(Trim(name)));
    }
    return Join(out, " , ");
  }

  static const std::string& VenueFull(const Entity& e) {
    return pools::kVenuesFull[std::stoul(Get(e, "venue_idx"))];
  }
  static const std::string& VenueAbbrev(const Entity& e) {
    return pools::kVenuesAbbrev[std::stoul(Get(e, "venue_idx"))];
  }
};

// style: kScholar builds the noisy Google-Scholar-like side; kAcm the clean
// ACM-like side.
class CitationGenerator : public DatasetGenerator {
 public:
  enum class Style { kScholar, kAcm };
  explicit CitationGenerator(Style style) : style_(style) {}

  Schema SchemaA() const override {
    return Schema({"title", "authors", "venue", "year"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override { return CitationWorld::Sample(rng); }
  Entity MutateEntity(const Entity& e, Rng* rng) const override {
    return CitationWorld::Mutate(e, rng);
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    // DBLP side: clean, abbreviated venue, full author names.
    NoiseProfile noise{.drop_word_p = 0.02, .typo_p = 0.02, .swap_p = 0.02};
    return Record({PerturbText(Get(e, "title"), noise, rng), Get(e, "authors"),
                   CitationWorld::VenueAbbrev(e), Get(e, "year")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    if (style_ == Style::kScholar) {
      // Scholar side: abbreviated authors ("m stonebraker"), noisy titles,
      // mixed venue forms, missing years.
      NoiseProfile noise{.drop_word_p = 0.22, .typo_p = 0.12, .swap_p = 0.12};
      const std::string venue = rng->NextBool(0.5)
                                    ? CitationWorld::VenueFull(e)
                                    : std::string(CitationWorld::VenueAbbrev(e));
      return Record({PerturbText(Get(e, "title"), noise, rng),
                     CitationWorld::AbbrevAuthors(Get(e, "authors")),
                     MaybeNull(venue, 0.15, rng),
                     MaybeNull(Get(e, "year"), 0.30, rng)});
    }
    // ACM side: full everything, light noise (the easy DBLP-ACM dataset).
    NoiseProfile noise{.drop_word_p = 0.03, .typo_p = 0.05, .swap_p = 0.03};
    return Record({PerturbText(Get(e, "title"), noise, rng), Get(e, "authors"),
                   CitationWorld::VenueFull(e), Get(e, "year")});
  }

 private:
  Style style_;
};

// ---------------------------------------------------------------------------
// Restaurant domain: Fodors-Zagats (FZ) and Zomato-Yelp (ZY, dirty)
// ---------------------------------------------------------------------------

class RestaurantWorld {
 public:
  static Entity Sample(Rng* rng) {
    Entity e;
    e["name"] = SampleWord(pools::kRestaurantFirst, rng) + " " +
                SampleWord(pools::kRestaurantSecond, rng);
    e["street"] = RandomDigits(3, rng) + " " + SampleWord(pools::kStreets, rng);
    e["city"] = SampleWord(pools::kCities, rng);
    e["phone"] = RandomDigits(3, rng) + " " + RandomDigits(3, rng) + " " +
                 RandomDigits(4, rng);
    e["cuisine"] = SampleWord(pools::kCuisines, rng);
    e["class"] = RandomDigits(3, rng);
    return e;
  }

  // Same city & cuisine, different name/address/phone.
  static Entity Mutate(const Entity& in, Rng* rng) {
    Entity e = in;
    e["name"] = SampleWord(pools::kRestaurantFirst, rng) + " " +
                (rng->NextBool(0.4) ? Get(in, "name").substr(Get(in, "name").find(' ') + 1)
                                    : SampleWord(pools::kRestaurantSecond, rng));
    e["street"] = RandomDigits(3, rng) + " " + SampleWord(pools::kStreets, rng);
    e["phone"] = RandomDigits(3, rng) + " " + RandomDigits(3, rng) + " " +
                 RandomDigits(4, rng);
    e["class"] = RandomDigits(3, rng);
    return e;
  }

  static std::string PhoneWith(const Entity& e, char sep) {
    auto parts = SplitWhitespace(Get(e, "phone"));
    return parts[0] + sep + parts[1] + '-' + parts[2];
  }
};

class FodorsZagatsGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override {
    return Schema({"name", "addr", "city", "phone", "type", "class"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override { return RestaurantWorld::Sample(rng); }
  Entity MutateEntity(const Entity& e, Rng* rng) const override {
    return RestaurantWorld::Mutate(e, rng);
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    // Fodors: "/"-separated area code, occasional "the" prefix.
    NoiseProfile noise{.drop_word_p = 0.02, .typo_p = 0.03, .swap_p = 0.0};
    std::string name = Get(e, "name");
    if (rng->NextBool(0.2)) name = "the " + name;
    return Record({PerturbText(name, noise, rng), Get(e, "street"),
                   Get(e, "city"), RestaurantWorld::PhoneWith(e, '/'),
                   Get(e, "cuisine"), Get(e, "class")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    // Zagats: "-"-separated phones, light name noise.
    NoiseProfile noise{.drop_word_p = 0.04, .typo_p = 0.05, .swap_p = 0.04};
    return Record({PerturbText(Get(e, "name"), noise, rng),
                   PerturbText(Get(e, "street"), noise, rng), Get(e, "city"),
                   RestaurantWorld::PhoneWith(e, '-'), Get(e, "cuisine"),
                   MaybeNull(Get(e, "class"), 0.2, rng)});
  }
};

class ZomatoYelpGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override { return Schema({"name", "addr", "phone"}); }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override { return RestaurantWorld::Sample(rng); }
  Entity MutateEntity(const Entity& e, Rng* rng) const override {
    return RestaurantWorld::Mutate(e, rng);
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    NoiseProfile noise{.drop_word_p = 0.05, .typo_p = 0.05, .swap_p = 0.05};
    Record r({PerturbText(Get(e, "name"), noise, rng),
              Get(e, "street") + " " + Get(e, "city"),
              RestaurantWorld::PhoneWith(e, '-')});
    return Dirty(std::move(r), rng);
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    NoiseProfile noise{.drop_word_p = 0.15, .typo_p = 0.12, .swap_p = 0.12};
    Record r({PerturbText(Get(e, "name"), noise, rng),
              MaybeNull(Get(e, "street"), 0.25, rng),
              MaybeNull(RestaurantWorld::PhoneWith(e, ' '), 0.25, rng)});
    return Dirty(std::move(r), rng);
  }

 private:
  // The paper evaluates the *dirty* Zomato-Yelp: values land in the wrong
  // attribute with some probability (DeepMatcher's dirty-data protocol).
  static Record Dirty(Record r, Rng* rng) {
    if (rng->NextBool(0.35) && r.size() >= 2) {
      const size_t i = rng->NextBelow(r.size());
      size_t j = rng->NextBelow(r.size());
      if (i == j) j = (j + 1) % r.size();
      std::string vi = r.value(i), vj = r.value(j);
      r.set_value(i, vj);
      r.set_value(j, vi);
    }
    return r;
  }
};

// ---------------------------------------------------------------------------
// Music domain: iTunes-Amazon (IA)
// ---------------------------------------------------------------------------

class ITunesAmazonGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override {
    return Schema({"song_name", "artist_name", "album_name", "genre", "price",
                   "copyright", "time", "released"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override {
    Entity e;
    e["song"] = SampleWords(pools::kSongWords, 2 + rng->NextBelow(2), rng);
    e["artist"] = "the " + SampleWords(pools::kArtistWords, 1 + rng->NextBelow(2), rng);
    e["album"] = SampleWords(pools::kSongWords, 1 + rng->NextBelow(2), rng);
    e["genre"] = SampleWord(pools::kGenres, rng);
    e["price"] = rng->NextBool(0.5) ? "0.99" : "1.29";
    e["label"] = SampleWord(pools::kLabels, rng);
    e["minutes"] = std::to_string(2 + rng->NextBelow(5));
    e["seconds"] = StrFormat("%02d", static_cast<int>(rng->NextBelow(60)));
    e["year"] = std::to_string(1990 + rng->NextBelow(31));
    return e;
  }

  // Same artist & genre, different song/album: the classic music hard case.
  Entity MutateEntity(const Entity& in, Rng* rng) const override {
    Entity e = in;
    e["song"] = SampleWords(pools::kSongWords, 2 + rng->NextBelow(2), rng);
    if (rng->NextBool(0.5)) {
      e["album"] = SampleWords(pools::kSongWords, 1 + rng->NextBelow(2), rng);
    }
    e["minutes"] = std::to_string(2 + rng->NextBelow(5));
    e["seconds"] = StrFormat("%02d", static_cast<int>(rng->NextBelow(60)));
    return e;
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    // iTunes style.
    NoiseProfile noise{.drop_word_p = 0.03, .typo_p = 0.03, .swap_p = 0.03};
    std::string song = Get(e, "song");
    if (rng->NextBool(0.15)) song += " ( feat . " + SampleWord(pools::kArtistWords, rng) + " )";
    return Record({PerturbText(song, noise, rng), Get(e, "artist"),
                   Get(e, "album"), Get(e, "genre"), Get(e, "price"),
                   Get(e, "year") + " " + Get(e, "label"),
                   Get(e, "minutes") + ":" + Get(e, "seconds"),
                   "january " + std::to_string(1 + rng->NextBelow(28)) + " , " +
                       Get(e, "year")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    // Amazon Music style: "(album version)" suffixes, (c)-style copyright.
    NoiseProfile noise{.drop_word_p = 0.18, .typo_p = 0.08, .swap_p = 0.08};
    std::string song = Get(e, "song");
    if (rng->NextBool(0.3)) song += " ( album version )";
    return Record({PerturbText(song, noise, rng),
                   PerturbText(Get(e, "artist"), noise, rng),
                   MaybeNull(Get(e, "album"), 0.15, rng),
                   MaybeNull(Get(e, "genre"), 0.20, rng), Get(e, "price"),
                   "( c ) " + Get(e, "year") + " " + Get(e, "label"),
                   Get(e, "minutes") + " min " + Get(e, "seconds") + " sec",
                   MaybeNull(Get(e, "year"), 0.25, rng)});
  }
};

// ---------------------------------------------------------------------------
// Movie domain: RottenTomatoes-IMDB (RI)
// ---------------------------------------------------------------------------

class RottenImdbGenerator : public DatasetGenerator {
 public:
  Schema SchemaA() const override { return Schema({"name", "year", "director"}); }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override {
    Entity e;
    e["name"] = (rng->NextBool(0.4) ? std::string("the ") : std::string()) +
                SampleWords(pools::kMovieWords, 2 + rng->NextBelow(2), rng);
    e["year"] = std::to_string(1970 + rng->NextBelow(52));
    e["director"] = RandomPersonName(rng);
    return e;
  }

  // Same year or same director, different title: e.g. a remake vs original.
  Entity MutateEntity(const Entity& in, Rng* rng) const override {
    Entity e = in;
    auto words = SplitWhitespace(e["name"]);
    words[rng->NextBelow(words.size())] = SampleWord(pools::kMovieWords, rng);
    if (rng->NextBool(0.5)) words.push_back(SampleWord(pools::kMovieWords, rng));
    e["name"] = Join(words, " ");
    if (rng->NextBool(0.5)) e["director"] = RandomPersonName(rng);
    return e;
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    NoiseProfile noise{.drop_word_p = 0.03, .typo_p = 0.04, .swap_p = 0.03};
    return Record({PerturbText(Get(e, "name"), noise, rng), Get(e, "year"),
                   Get(e, "director")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    // IMDB style: "(year)" suffix, abbreviated or missing directors.
    NoiseProfile noise{.drop_word_p = 0.06, .typo_p = 0.06, .swap_p = 0.05};
    std::string name = PerturbText(Get(e, "name"), noise, rng);
    if (rng->NextBool(0.3)) name += " ( " + Get(e, "year") + " )";
    std::string director = Get(e, "director");
    if (rng->NextBool(0.25)) director = AbbreviateName(director);
    return Record({name, MaybeNull(Get(e, "year"), 0.1, rng),
                   MaybeNull(director, 0.2, rng)});
  }
};

// ---------------------------------------------------------------------------
// Books domain: Books2 (B2)
// ---------------------------------------------------------------------------

class Books2Generator : public DatasetGenerator {
 public:
  Schema SchemaA() const override {
    return Schema({"title", "authors", "publisher", "pubyear", "pages", "isbn",
                   "language", "edition", "price"});
  }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override {
    Entity e;
    e["title"] = SampleWords(pools::kBookWords, 2 + rng->NextBelow(3), rng);
    e["authors"] = RandomPersonName(rng);
    if (rng->NextBool(0.3)) e["authors"] += " , " + RandomPersonName(rng);
    e["publisher"] = SampleWord(pools::kPublishers, rng);
    e["pubyear"] = std::to_string(1980 + rng->NextBelow(42));
    e["pages"] = std::to_string(100 + rng->NextBelow(800));
    e["isbn"] = RandomDigits(13, rng);
    e["language"] = SampleWord(pools::kLanguages, rng);
    e["edition"] = std::to_string(1 + rng->NextBelow(5));
    e["price"] = StrFormat("%.2f", 5.0 + rng->NextDouble() * 145.0);
    return e;
  }

  // Same author & publisher, different title/isbn/edition.
  Entity MutateEntity(const Entity& in, Rng* rng) const override {
    Entity e = in;
    auto words = SplitWhitespace(e["title"]);
    words[rng->NextBelow(words.size())] = SampleWord(pools::kBookWords, rng);
    e["title"] = Join(words, " ");
    e["isbn"] = RandomDigits(13, rng);
    e["edition"] = std::to_string(1 + rng->NextBelow(5));
    e["pages"] = std::to_string(100 + rng->NextBelow(800));
    return e;
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    NoiseProfile noise{.drop_word_p = 0.03, .typo_p = 0.04, .swap_p = 0.03};
    return Record({PerturbText(Get(e, "title"), noise, rng), Get(e, "authors"),
                   Get(e, "publisher"), Get(e, "pubyear"), Get(e, "pages"),
                   Get(e, "isbn"), Get(e, "language"), Get(e, "edition"),
                   Get(e, "price")});
  }

  Record ViewB(const Entity& e, Rng* rng) const override {
    // Second marketplace: dashed ISBNs, "last, first" author order, NULLs.
    NoiseProfile noise{.drop_word_p = 0.06, .typo_p = 0.05, .swap_p = 0.05};
    const std::string& isbn = Get(e, "isbn");
    const std::string dashed_isbn = isbn.substr(0, 3) + "-" + isbn.substr(3, 5) +
                                    "-" + isbn.substr(8);
    auto name_parts = SplitWhitespace(Split(Get(e, "authors"), ',')[0]);
    std::string flipped = name_parts.size() == 2
                              ? name_parts[1] + " , " + name_parts[0]
                              : Get(e, "authors");
    return Record({PerturbText(Get(e, "title"), noise, rng), flipped,
                   MaybeNull(Get(e, "publisher"), 0.15, rng),
                   Get(e, "pubyear"), MaybeNull(Get(e, "pages"), 0.3, rng),
                   dashed_isbn, MaybeNull(Get(e, "language"), 0.3, rng),
                   MaybeNull(Get(e, "edition"), 0.3, rng),
                   PerturbNumber(Get(e, "price"), 0.05, rng)});
  }
};

// ---------------------------------------------------------------------------
// WDC product corpus: computers (CO), cameras (CA), watches (WT), shoes (SH)
// ---------------------------------------------------------------------------

// All four categories share schema (title, price), brand pool, and the
// kWdcSharedWords marketing vocabulary; only the category noun pool differs.
// That shared "Title" style is why the paper observes little domain shift
// (and little DA gain) across WDC categories.
class WdcGenerator : public DatasetGenerator {
 public:
  explicit WdcGenerator(const std::vector<std::string>* category_pool)
      : category_pool_(category_pool) {}

  Schema SchemaA() const override { return Schema({"title", "price"}); }
  Schema SchemaB() const override { return SchemaA(); }

  Entity SampleEntity(Rng* rng) const override {
    Entity e;
    e["brand"] = SampleWord(pools::kBrands, rng);
    e["catwords"] = SampleWords(*category_pool_, 2 + rng->NextBelow(2), rng);
    e["shared"] = SampleWords(pools::kWdcSharedWords, 1 + rng->NextBelow(2), rng);
    e["model"] = RandomModelCode(rng);
    e["price"] = StrFormat("%.2f", 20.0 + rng->NextDouble() * 1480.0);
    return e;
  }

  Entity MutateEntity(const Entity& in, Rng* rng) const override {
    Entity e = in;
    e["model"] = RandomModelCode(rng);
    if (rng->NextBool(0.5)) {
      e["catwords"] = SampleWords(*category_pool_, 2 + rng->NextBelow(2), rng);
    }
    e["price"] = StrFormat("%.2f", 20.0 + rng->NextDouble() * 1480.0);
    return e;
  }

  Record ViewA(const Entity& e, Rng* rng) const override {
    return Render(e, rng);
  }
  Record ViewB(const Entity& e, Rng* rng) const override {
    return Render(e, rng);
  }

 private:
  // Both sides are e-commerce scrapes with the same messy title style.
  Record Render(const Entity& e, Rng* rng) const {
    NoiseProfile noise{.drop_word_p = 0.12, .typo_p = 0.05, .swap_p = 0.15};
    std::string title = Get(e, "brand") + " " + Get(e, "catwords") + " " +
                        Get(e, "shared") + " " + Get(e, "model");
    if (rng->NextBool(0.3)) {
      title += " " + SampleWords(pools::kWdcSharedWords, 1, rng);
    }
    return Record({PerturbText(title, noise, rng),
                   MaybeNull(PerturbNumber(Get(e, "price"), 0.03, rng), 0.4, rng)});
  }

  const std::vector<std::string>* category_pool_;
};

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"WA", "Walmart-Amazon", "Product", 10242, 962, 5},
      {"AB", "Abt-Buy", "Product", 9575, 1028, 3},
      {"DS", "DBLP-Scholar", "Citation", 28707, 5347, 4},
      {"DA", "DBLP-ACM", "Citation", 12363, 2220, 4},
      {"FZ", "Fodors-Zagats", "Restaurant", 946, 110, 6},
      {"ZY", "Zomato-Yelp", "Restaurant", 894, 214, 3},
      {"IA", "iTunes-Amazon", "Music", 532, 132, 8},
      {"RI", "RottenTomatoes-IMDB", "Movies", 600, 190, 3},
      {"B2", "Books2", "Books", 394, 92, 9},
      {"CO", "WDC-Computers", "Product", 1100, 300, 2},
      {"CA", "WDC-Cameras", "Product", 1100, 300, 2},
      {"WT", "WDC-Watches", "Product", 1100, 300, 2},
      {"SH", "WDC-Shoes", "Product", 1100, 300, 2},
  };
  return kSpecs;
}

Result<DatasetSpec> FindDatasetSpec(const std::string& short_name) {
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.short_name == short_name) return spec;
  }
  return Status::NotFound("unknown dataset '" + short_name + "'");
}

Result<std::unique_ptr<DatasetGenerator>> MakeGenerator(
    const std::string& short_name) {
  std::unique_ptr<DatasetGenerator> gen;
  if (short_name == "WA") {
    gen = std::make_unique<WalmartAmazonGenerator>();
  } else if (short_name == "AB") {
    gen = std::make_unique<AbtBuyGenerator>();
  } else if (short_name == "DS") {
    gen = std::make_unique<CitationGenerator>(CitationGenerator::Style::kScholar);
  } else if (short_name == "DA") {
    gen = std::make_unique<CitationGenerator>(CitationGenerator::Style::kAcm);
  } else if (short_name == "FZ") {
    gen = std::make_unique<FodorsZagatsGenerator>();
  } else if (short_name == "ZY") {
    gen = std::make_unique<ZomatoYelpGenerator>();
  } else if (short_name == "IA") {
    gen = std::make_unique<ITunesAmazonGenerator>();
  } else if (short_name == "RI") {
    gen = std::make_unique<RottenImdbGenerator>();
  } else if (short_name == "B2") {
    gen = std::make_unique<Books2Generator>();
  } else if (short_name == "CO") {
    gen = std::make_unique<WdcGenerator>(&pools::kWdcComputerWords);
  } else if (short_name == "CA") {
    gen = std::make_unique<WdcGenerator>(&pools::kWdcCameraWords);
  } else if (short_name == "WT") {
    gen = std::make_unique<WdcGenerator>(&pools::kWdcWatchWords);
  } else if (short_name == "SH") {
    gen = std::make_unique<WdcGenerator>(&pools::kWdcShoeWords);
  } else {
    return Status::NotFound("unknown dataset '" + short_name + "'");
  }
  return gen;
}

Result<ERDataset> GenerateDataset(const std::string& short_name,
                                  const GenerateOptions& options) {
  DADER_ASSIGN_OR_RETURN(DatasetSpec spec, FindDatasetSpec(short_name));
  DADER_ASSIGN_OR_RETURN(std::unique_ptr<DatasetGenerator> gen,
                         MakeGenerator(short_name));
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }

  const int64_t n_pairs = std::max<int64_t>(
      options.min_pairs,
      static_cast<int64_t>(spec.paper_pairs * options.scale + 0.5));
  const double match_rate =
      static_cast<double>(spec.paper_matches) / spec.paper_pairs;
  const int64_t n_matches =
      std::max<int64_t>(1, static_cast<int64_t>(n_pairs * match_rate + 0.5));
  const int64_t n_nonmatches = n_pairs - n_matches;
  const int64_t n_hard = static_cast<int64_t>(
      n_nonmatches * options.hard_negative_fraction + 0.5);

  Rng rng(options.seed ^ Fnv1a64(short_name));
  std::vector<LabeledPair> pairs;
  pairs.reserve(static_cast<size_t>(n_pairs));
  for (int64_t i = 0; i < n_matches; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    pairs.push_back({gen->ViewA(e, &rng), gen->ViewB(e, &rng), 1});
  }
  for (int64_t i = 0; i < n_hard; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    const Entity other = gen->MutateEntity(e, &rng);
    pairs.push_back({gen->ViewA(e, &rng), gen->ViewB(other, &rng), 0});
  }
  for (int64_t i = n_hard; i < n_nonmatches; ++i) {
    const Entity e1 = gen->SampleEntity(&rng);
    const Entity e2 = gen->SampleEntity(&rng);
    pairs.push_back({gen->ViewA(e1, &rng), gen->ViewB(e2, &rng), 0});
  }
  rng.Shuffle(&pairs);

  ERDataset out(spec.full_name, spec.domain, gen->SchemaA(), gen->SchemaB());
  for (auto& p : pairs) out.AddPair(std::move(p));
  return out;
}

Result<GeneratedTables> GenerateTables(const std::string& short_name,
                                       int64_t n_entities, uint64_t seed) {
  DADER_ASSIGN_OR_RETURN(DatasetSpec spec, FindDatasetSpec(short_name));
  DADER_ASSIGN_OR_RETURN(std::unique_ptr<DatasetGenerator> gen,
                         MakeGenerator(short_name));
  if (n_entities <= 0) {
    return Status::InvalidArgument("n_entities must be positive");
  }
  Rng rng(seed ^ Fnv1a64(short_name) ^ 0xab1eULL);
  GeneratedTables out;
  out.a = Table(spec.full_name + "-A", gen->SchemaA());
  out.b = Table(spec.full_name + "-B", gen->SchemaB());
  for (int64_t i = 0; i < n_entities; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    const bool in_a = rng.NextBool(0.85);
    const bool in_b = rng.NextBool(0.85);
    size_t ia = 0, ib = 0;
    if (in_a) {
      ia = out.a.size();
      out.a.AddRow(gen->ViewA(e, &rng));
    }
    if (in_b) {
      ib = out.b.size();
      out.b.AddRow(gen->ViewB(e, &rng));
    }
    if (in_a && in_b) out.gold_matches.emplace_back(ia, ib);
  }
  return out;
}

}  // namespace dader::data
