#include "data/blocking.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "text/tokenizer.h"

namespace dader::data {

namespace {

// Distinct qualifying tokens of a record (all attributes concatenated).
std::vector<std::string> RecordTokens(const Record& r,
                                      const BlockingConfig& config) {
  std::set<std::string> tokens;
  for (const auto& value : r.values()) {
    for (auto& tok : text::WordTokenize(value)) {
      if (tok.size() >= config.min_token_length) tokens.insert(std::move(tok));
    }
  }
  return {tokens.begin(), tokens.end()};
}

}  // namespace

std::vector<CandidatePair> OverlapBlocker::GenerateCandidates(
    const Table& a, const Table& b) const {
  // Inverted index: token -> B row indices.
  std::unordered_map<std::string, std::vector<size_t>> index;
  for (size_t j = 0; j < b.size(); ++j) {
    for (const auto& tok : RecordTokens(b.row(j), config_)) {
      index[tok].push_back(j);
    }
  }

  std::vector<CandidatePair> out;
  std::unordered_map<size_t, size_t> overlap;  // B row -> shared token count
  for (size_t i = 0; i < a.size(); ++i) {
    overlap.clear();
    for (const auto& tok : RecordTokens(a.row(i), config_)) {
      auto it = index.find(tok);
      if (it == index.end()) continue;
      for (size_t j : it->second) ++overlap[j];
    }
    std::vector<CandidatePair> row_candidates;
    for (const auto& [j, count] : overlap) {
      if (count >= config_.min_shared_tokens) {
        row_candidates.push_back({i, j, count});
      }
    }
    std::sort(row_candidates.begin(), row_candidates.end(),
              [](const CandidatePair& x, const CandidatePair& y) {
                return x.shared_tokens > y.shared_tokens;
              });
    if (row_candidates.size() > config_.max_candidates_per_record) {
      row_candidates.resize(config_.max_candidates_per_record);
    }
    out.insert(out.end(), row_candidates.begin(), row_candidates.end());
  }
  return out;
}

double OverlapBlocker::Recall(
    const std::vector<CandidatePair>& candidates,
    const std::vector<std::pair<size_t, size_t>>& gold) {
  if (gold.empty()) return 1.0;
  std::set<std::pair<size_t, size_t>> cand_set;
  for (const auto& c : candidates) cand_set.insert({c.index_a, c.index_b});
  size_t hit = 0;
  for (const auto& g : gold) hit += cand_set.count(g);
  return static_cast<double>(hit) / static_cast<double>(gold.size());
}

}  // namespace dader::data
