// Synthetic re-creations of the paper's 13 benchmark ER datasets (Table 2).
//
// Each generator defines: the schemas of tables A and B, a canonical-entity
// sampler over its domain vocabulary, two "views" that render an entity in
// each table's textual style (this is where cross-dataset style shift comes
// from), and a mutation operator producing hard negatives (similar but
// distinct entities). The engine assembles labeled pair sets with the
// paper's match rates, scaled by a size factor.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/worlds.h"
#include "util/status.h"

namespace dader::data {

/// \brief Static description of one benchmark dataset (mirrors Table 2).
struct DatasetSpec {
  std::string short_name;   ///< "WA"
  std::string full_name;    ///< "Walmart-Amazon"
  std::string domain;       ///< "Product"
  int64_t paper_pairs;      ///< #Pairs in Table 2
  int64_t paper_matches;    ///< #Matches in Table 2
  int64_t num_attrs;        ///< #Attrs in Table 2
};

/// \brief All 13 specs in Table 2 order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// \brief Spec lookup by short name ("WA", "AB", ..., "SH").
Result<DatasetSpec> FindDatasetSpec(const std::string& short_name);

/// \brief Interface implemented per benchmark dataset.
class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  virtual Schema SchemaA() const = 0;
  virtual Schema SchemaB() const = 0;

  /// \brief Draws a fresh canonical entity.
  virtual Entity SampleEntity(Rng* rng) const = 0;

  /// \brief A similar-but-different entity (hard negative): shares broad
  /// identity (brand / venue / city / artist) but differs in the fields
  /// that determine identity.
  virtual Entity MutateEntity(const Entity& entity, Rng* rng) const = 0;

  /// \brief Renders the entity in table A's style (with its noise).
  virtual Record ViewA(const Entity& entity, Rng* rng) const = 0;

  /// \brief Renders the entity in table B's style.
  virtual Record ViewB(const Entity& entity, Rng* rng) const = 0;
};

/// \brief Creates the generator for a short name.
Result<std::unique_ptr<DatasetGenerator>> MakeGenerator(
    const std::string& short_name);

/// \brief Options controlling dataset assembly.
struct GenerateOptions {
  /// Multiplies the paper's #Pairs (1.0 reproduces Table 2 sizes).
  double scale = 1.0;
  /// Floor on the generated pair count, so tiny scales stay trainable.
  int64_t min_pairs = 60;
  /// Fraction of non-matches that are hard negatives (mutations).
  double hard_negative_fraction = 0.5;
  uint64_t seed = 7;
};

/// \brief Generates the labeled pair set for one benchmark dataset.
Result<ERDataset> GenerateDataset(const std::string& short_name,
                                  const GenerateOptions& options);

/// \brief Raw tables + gold matches for the full blocking->matching
/// pipeline (examples/er_pipeline.cpp).
struct GeneratedTables {
  Table a;
  Table b;
  /// Gold (row in a, row in b) matching index pairs.
  std::vector<std::pair<size_t, size_t>> gold_matches;
};

/// \brief Generates two overlapping tables of ~n_entities each.
Result<GeneratedTables> GenerateTables(const std::string& short_name,
                                       int64_t n_entities, uint64_t seed);

}  // namespace dader::data
