#include "data/dataset.h"

#include <numeric>

#include "util/csv.h"
#include "util/string_util.h"

namespace dader::data {

size_t ERDataset::NumMatches() const {
  size_t n = 0;
  for (const auto& p : pairs_) n += (p.label == 1);
  return n;
}

double ERDataset::MatchRate() const {
  size_t labeled = 0, matches = 0;
  for (const auto& p : pairs_) {
    if (p.labeled()) {
      ++labeled;
      matches += (p.label == 1);
    }
  }
  return labeled == 0 ? 0.0 : static_cast<double>(matches) / labeled;
}

ERDataset ERDataset::WithoutLabels() const {
  ERDataset out(name_, domain_, schema_a_, schema_b_);
  for (const auto& p : pairs_) {
    LabeledPair q = p;
    q.label = -1;
    out.pairs_.push_back(std::move(q));
  }
  return out;
}

ERDataset ERDataset::Subset(const std::vector<size_t>& indices) const {
  ERDataset out(name_, domain_, schema_a_, schema_b_);
  for (size_t i : indices) {
    DADER_CHECK_LT(i, pairs_.size());
    out.pairs_.push_back(pairs_[i]);
  }
  return out;
}

DatasetSplits ERDataset::Split(double train_frac, double valid_frac,
                               double test_frac, Rng* rng) const {
  DADER_CHECK(rng != nullptr);
  const double total = train_frac + valid_frac + test_frac;
  DADER_CHECK_MSG(total > 0.999 && total < 1.001, "split fractions must sum to 1");
  std::vector<size_t> idx(pairs_.size());
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  const size_t n_train = static_cast<size_t>(train_frac * idx.size());
  const size_t n_valid = static_cast<size_t>(valid_frac * idx.size());
  DatasetSplits out;
  out.train = Subset({idx.begin(), idx.begin() + n_train});
  out.valid = Subset({idx.begin() + n_train, idx.begin() + n_train + n_valid});
  out.test = Subset({idx.begin() + n_train + n_valid, idx.end()});
  return out;
}

Status ERDataset::ToCsvFile(const std::string& path) const {
  CsvTable csv;
  for (const auto& attr : schema_a_.attributes()) csv.header.push_back("a_" + attr);
  for (const auto& attr : schema_b_.attributes()) csv.header.push_back("b_" + attr);
  csv.header.push_back("label");
  for (const auto& p : pairs_) {
    std::vector<std::string> row;
    row.reserve(csv.header.size());
    for (const auto& v : p.a.values()) row.push_back(v);
    for (const auto& v : p.b.values()) row.push_back(v);
    row.push_back(p.labeled() ? std::to_string(p.label) : "");
    csv.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, csv);
}

Result<ERDataset> ERDataset::FromCsvFile(const std::string& path,
                                         const std::string& name,
                                         const std::string& domain) {
  DADER_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(path));
  std::vector<std::string> attrs_a, attrs_b;
  int label_col = -1;
  for (size_t i = 0; i < csv.header.size(); ++i) {
    const std::string& h = csv.header[i];
    if (StartsWith(h, "a_")) {
      attrs_a.push_back(h.substr(2));
    } else if (StartsWith(h, "b_")) {
      attrs_b.push_back(h.substr(2));
    } else if (h == "label") {
      label_col = static_cast<int>(i);
    } else {
      return Status::InvalidArgument("unexpected column '" + h + "' in " + path);
    }
  }
  if (attrs_a.empty() || attrs_b.empty()) {
    return Status::InvalidArgument("missing a_/b_ columns in " + path);
  }
  ERDataset out(name, domain, Schema(attrs_a), Schema(attrs_b));
  for (const auto& row : csv.rows) {
    LabeledPair p;
    std::vector<std::string> va, vb;
    for (size_t i = 0; i < csv.header.size(); ++i) {
      if (static_cast<int>(i) == label_col) {
        if (!row[i].empty()) {
          if (row[i] != "0" && row[i] != "1") {
            return Status::InvalidArgument("bad label '" + row[i] + "' in " + path);
          }
          p.label = row[i] == "1" ? 1 : 0;
        }
      } else if (StartsWith(csv.header[i], "a_")) {
        va.push_back(row[i]);
      } else {
        vb.push_back(row[i]);
      }
    }
    p.a = Record(std::move(va));
    p.b = Record(std::move(vb));
    out.AddPair(std::move(p));
  }
  return out;
}

}  // namespace dader::data
