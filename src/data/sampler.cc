#include "data/sampler.h"

namespace dader::data {

MinibatchSampler::MinibatchSampler(const ERDataset* dataset, size_t batch_size,
                                   Rng rng, bool drop_last)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      drop_last_(drop_last) {
  DADER_CHECK(dataset_ != nullptr);
  DADER_CHECK_GT(batch_size_, 0u);
  DADER_CHECK_GT(dataset_->size(), 0u);
  order_.resize(dataset_->size());
  std::iota(order_.begin(), order_.end(), 0);
  Reshuffle();
}

void MinibatchSampler::Reshuffle() {
  rng_.Shuffle(&order_);
  cursor_ = 0;
}

size_t MinibatchSampler::BatchesPerEpoch() const {
  const size_t n = order_.size();
  if (drop_last_) return n / batch_size_;
  return (n + batch_size_ - 1) / batch_size_;
}

std::vector<size_t> MinibatchSampler::NextBatch() {
  const size_t remaining = order_.size() - cursor_;
  if (remaining == 0 || (drop_last_ && remaining < batch_size_)) {
    ++epoch_;
    Reshuffle();
  }
  const size_t take = std::min(batch_size_, order_.size() - cursor_);
  std::vector<size_t> batch(order_.begin() + static_cast<long>(cursor_),
                            order_.begin() + static_cast<long>(cursor_ + take));
  cursor_ += take;
  return batch;
}

}  // namespace dader::data
