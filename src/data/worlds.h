// Shared vocabulary pools and textual perturbation utilities for the
// synthetic benchmark generators.
//
// The original paper evaluates on 13 real datasets (DeepMatcher, Magellan,
// WDC). Those files are not available offline, so generators.h re-creates
// each dataset's *structure*: its schema, its domain vocabulary, its textual
// style, and its match/non-match construction. Perturbations model the messy
// phenomena the real data exhibits: abbreviations ("michael" -> "m"),
// dropped tokens, typos, NULLed attributes, reordered words, numeric noise,
// and dirty attribute swaps (DeepMatcher's "dirty" datasets).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dader::data {

/// \brief A canonical entity: attribute -> canonical value. Views render it
/// into the (possibly different) schemas of tables A and B.
using Entity = std::map<std::string, std::string>;

// ---------------------------------------------------------------------------
// Perturbations
// ---------------------------------------------------------------------------

/// \brief Abbreviates every word except the last to its first letter:
/// "michael stonebraker" -> "m stonebraker" (the DBLP-Scholar author style).
std::string AbbreviateName(const std::string& full_name);

/// \brief Randomly drops each word with probability p (never drops all).
std::string DropRandomWords(const std::string& text, double p, Rng* rng);

/// \brief Introduces a single-character typo (substitution, deletion, or
/// transposition) into one random word of at least 4 characters.
std::string IntroduceTypo(const std::string& text, Rng* rng);

/// \brief Randomly swaps two adjacent words.
std::string SwapAdjacentWords(const std::string& text, Rng* rng);

/// \brief Keeps at most `max_words` leading words.
std::string TruncateWords(const std::string& text, size_t max_words);

/// \brief Multiplies a numeric string by (1 +/- rel_noise); non-numeric
/// strings are returned unchanged.
std::string PerturbNumber(const std::string& number, double rel_noise,
                          Rng* rng);

/// \brief Per-view noise profile; applied by PerturbText.
struct NoiseProfile {
  double drop_word_p = 0.0;   ///< per-word drop probability
  double typo_p = 0.0;        ///< probability of one typo in the string
  double swap_p = 0.0;        ///< probability of one adjacent-word swap
};

/// \brief Applies a NoiseProfile to free text.
std::string PerturbText(const std::string& text, const NoiseProfile& profile,
                        Rng* rng);

// ---------------------------------------------------------------------------
// Sampling helpers
// ---------------------------------------------------------------------------

/// \brief Uniform sample from a static word pool.
const std::string& SampleWord(const std::vector<std::string>& pool, Rng* rng);

/// \brief k distinct samples joined by spaces.
std::string SampleWords(const std::vector<std::string>& pool, size_t k,
                        Rng* rng);

/// \brief Random digit string of length n (no leading zero).
std::string RandomDigits(size_t n, Rng* rng);

/// \brief Alphanumeric model code like "sx-4203b".
std::string RandomModelCode(Rng* rng);

/// \brief US-style phone number with the given separator ("-" or "/").
std::string RandomPhone(Rng* rng, char separator);

/// \brief A random person name "first last" from the name pools.
std::string RandomPersonName(Rng* rng);

// ---------------------------------------------------------------------------
// Vocabulary pools (see worlds.cc for contents)
// ---------------------------------------------------------------------------

namespace pools {

extern const std::vector<std::string> kBrands;
extern const std::vector<std::string> kProductNouns;
extern const std::vector<std::string> kProductAdjectives;
extern const std::vector<std::string> kProductCategories;
extern const std::vector<std::string> kMarketingWords;
extern const std::vector<std::string> kFeatureWords;

extern const std::vector<std::string> kFirstNames;
extern const std::vector<std::string> kLastNames;
extern const std::vector<std::string> kPaperTitleWords;
extern const std::vector<std::string> kVenuesFull;
extern const std::vector<std::string> kVenuesAbbrev;  // aligned with kVenuesFull

extern const std::vector<std::string> kRestaurantFirst;
extern const std::vector<std::string> kRestaurantSecond;
extern const std::vector<std::string> kCities;
extern const std::vector<std::string> kStreets;
extern const std::vector<std::string> kCuisines;

extern const std::vector<std::string> kSongWords;
extern const std::vector<std::string> kArtistWords;
extern const std::vector<std::string> kGenres;
extern const std::vector<std::string> kLabels;

extern const std::vector<std::string> kMovieWords;
extern const std::vector<std::string> kBookWords;
extern const std::vector<std::string> kPublishers;
extern const std::vector<std::string> kLanguages;

// WDC product categories: per-category noun pools plus a shared title style.
extern const std::vector<std::string> kWdcComputerWords;
extern const std::vector<std::string> kWdcCameraWords;
extern const std::vector<std::string> kWdcWatchWords;
extern const std::vector<std::string> kWdcShoeWords;
extern const std::vector<std::string> kWdcSharedWords;

}  // namespace pools
}  // namespace dader::data
