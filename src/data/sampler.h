// Minibatch sampling over an ERDataset.
//
// Each epoch reshuffles the index permutation (deterministically from the
// sampler's RNG). Algorithm 1/2 sample one source batch and one target batch
// per iteration; two independent samplers provide that.

#pragma once

#include <numeric>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace dader::data {

/// \brief Cyclic shuffled minibatch iterator over pair indices.
class MinibatchSampler {
 public:
  /// \param dataset source of indices; must outlive the sampler.
  /// \param batch_size batch size (final batch of an epoch may be smaller
  ///   unless drop_last).
  MinibatchSampler(const ERDataset* dataset, size_t batch_size, Rng rng,
                   bool drop_last = false);

  /// \brief Next batch of pair indices; reshuffles at epoch boundaries.
  std::vector<size_t> NextBatch();

  /// \brief Batches per epoch.
  size_t BatchesPerEpoch() const;

  size_t epoch() const { return epoch_; }

 private:
  void Reshuffle();

  const ERDataset* dataset_;
  size_t batch_size_;
  Rng rng_;
  bool drop_last_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
  size_t epoch_ = 0;
};

}  // namespace dader::data
