#include "text/serializer.h"

#include <unordered_set>

namespace dader::text {

std::vector<int64_t> SerializeEntity(const AttrValueList& entity,
                                     const HashingVocab& vocab) {
  std::vector<int64_t> ids;
  for (const auto& [attr, value] : entity) {
    ids.push_back(kAtt);
    for (const auto& w : WordTokenize(attr)) ids.push_back(vocab.TokenId(w));
    ids.push_back(kVal);
    for (const auto& w : WordTokenize(value)) ids.push_back(vocab.TokenId(w));
  }
  return ids;
}

std::vector<int64_t> SerializePair(const AttrValueList& a,
                                   const AttrValueList& b,
                                   const HashingVocab& vocab) {
  std::vector<int64_t> ids;
  ids.push_back(kCls);
  const auto sa = SerializeEntity(a, vocab);
  ids.insert(ids.end(), sa.begin(), sa.end());
  ids.push_back(kSep);
  const auto sb = SerializeEntity(b, vocab);
  ids.insert(ids.end(), sb.begin(), sb.end());
  ids.push_back(kSep);
  return ids;
}

namespace {

// Distinct value-token ids of one entity (attribute names excluded).
std::unordered_set<int64_t> ValueTokenIds(const AttrValueList& entity,
                                          const HashingVocab& vocab) {
  std::unordered_set<int64_t> out;
  for (const auto& [attr, value] : entity) {
    for (const auto& w : WordTokenize(value)) out.insert(vocab.TokenId(w));
  }
  return out;
}

// Serializes one entity, appending ids and their overlap flags (1 for value
// tokens present in `other_values`).
void SerializeEntityWithOverlap(const AttrValueList& entity,
                                const HashingVocab& vocab,
                                const std::unordered_set<int64_t>& other_values,
                                std::vector<int64_t>* ids,
                                std::vector<float>* overlap) {
  for (const auto& [attr, value] : entity) {
    ids->push_back(kAtt);
    overlap->push_back(0.0f);
    for (const auto& w : WordTokenize(attr)) {
      ids->push_back(vocab.TokenId(w));
      overlap->push_back(0.0f);
    }
    ids->push_back(kVal);
    overlap->push_back(0.0f);
    for (const auto& w : WordTokenize(value)) {
      const int64_t id = vocab.TokenId(w);
      ids->push_back(id);
      overlap->push_back(other_values.count(id) != 0 ? 1.0f : 0.0f);
    }
  }
}

}  // namespace

EncodedSequence EncodePair(const AttrValueList& a, const AttrValueList& b,
                           const HashingVocab& vocab, int64_t max_len) {
  const auto values_a = ValueTokenIds(a, vocab);
  const auto values_b = ValueTokenIds(b, vocab);
  std::vector<int64_t> ids;
  std::vector<float> overlap;
  ids.push_back(kCls);
  overlap.push_back(0.0f);
  SerializeEntityWithOverlap(a, vocab, values_b, &ids, &overlap);
  ids.push_back(kSep);
  overlap.push_back(0.0f);
  SerializeEntityWithOverlap(b, vocab, values_a, &ids, &overlap);
  ids.push_back(kSep);
  overlap.push_back(0.0f);
  return PadToLength(std::move(ids), max_len, std::move(overlap));
}

std::string SerializePairToText(const AttrValueList& a,
                                const AttrValueList& b) {
  std::string out = "[CLS]";
  auto append_entity = [&out](const AttrValueList& e) {
    for (const auto& [attr, value] : e) {
      out += " [ATT] " + attr + " [VAL] " + value;
    }
  };
  append_entity(a);
  out += " [SEP]";
  append_entity(b);
  out += " [SEP]";
  return out;
}

}  // namespace dader::text
