// Tokenization and the hashing vocabulary.
//
// The original DADER uses BERT's WordPiece vocabulary; offline we use a
// fixed-size hashing vocabulary: words are lower-cased, split on whitespace
// and punctuation, and mapped to ids by FNV-1a hash modulo the table size.
// Special tokens ([PAD], [CLS], [SEP], [ATT], [VAL], [MASK], [UNK]) occupy
// reserved low ids. Hashing keeps the vocabulary shared across all domains,
// which is what gives the pre-trained LM its cross-domain transferability.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace dader::text {

/// \brief Reserved special-token ids.
enum SpecialToken : int64_t {
  kPad = 0,
  kCls = 1,
  kSep = 2,
  kAtt = 3,   // starts an attribute name (paper's [ATT])
  kVal = 4,   // starts an attribute value (paper's [VAL])
  kMask = 5,  // masked-token pre-training
  kUnk = 6,
  kNumSpecialTokens = 7,
};

/// \brief Name of a special token ("[CLS]", ...).
const char* SpecialTokenName(int64_t id);

/// \brief Splits raw text into lower-cased word tokens. Punctuation
/// characters become their own tokens; digits stay grouped.
std::vector<std::string> WordTokenize(std::string_view raw);

/// \brief Fixed-size hashing vocabulary.
class HashingVocab {
 public:
  /// \param size total table size including the reserved special ids;
  ///   must exceed kNumSpecialTokens.
  explicit HashingVocab(int64_t size);

  /// \brief Id of a word token (never returns a special id).
  int64_t TokenId(std::string_view word) const;

  /// \brief Ids for a whole pre-tokenized sequence.
  std::vector<int64_t> Encode(const std::vector<std::string>& words) const;

  int64_t size() const { return size_; }

 private:
  int64_t size_;
};

/// \brief A fixed-length model input: ids, attention mask, and per-token
/// cross-entity overlap flags.
///
/// `overlap[t]` is 1.0 when the token at position t is an attribute *value*
/// token that also occurs among the other entity's value tokens. This is a
/// Ditto-style domain-knowledge injection (Ditto's "span highlighting"
/// optimizations): at this repo's reduced model scale, a from-scratch
/// transformer cannot learn token-equality detection from a few hundred
/// pairs, so the signal BERT-scale models learn implicitly is made explicit.
/// Domain shift (schemas, vocabularies, styles, overlap statistics) is
/// untouched, so the DA phenomena the paper studies are preserved.
struct EncodedSequence {
  std::vector<int64_t> ids;   ///< length == max_len, padded with kPad
  std::vector<float> mask;    ///< 1.0 for real tokens, 0.0 for padding
  std::vector<float> overlap; ///< 1.0 for shared value tokens, else 0.0
  int64_t num_real = 0;       ///< count of non-pad positions
};

/// \brief Pads/truncates `ids` (+ aligned `overlap` flags, which may be
/// empty = all zero) to `max_len` and builds the mask.
EncodedSequence PadToLength(std::vector<int64_t> ids, int64_t max_len,
                            std::vector<float> overlap = {});

}  // namespace dader::text
