// Entity-pair serialization (Example 1 of the paper):
//
//   S(a)    = [ATT] attr_1 [VAL] val_1 ... [ATT] attr_k [VAL] val_k
//   S(a,b)  = [CLS] S(a) [SEP] S(b) [SEP]
//
// The serializer is decoupled from the data substrate: it accepts plain
// (attribute, value) lists, so any table representation can feed it.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "text/tokenizer.h"

namespace dader::text {

/// \brief One entity as an ordered list of (attribute name, value) pairs.
using AttrValueList = std::vector<std::pair<std::string, std::string>>;

/// \brief Token ids of S(entity): [ATT] name-tokens [VAL] value-tokens, per
/// attribute, in order. NULL values (empty strings) produce an empty [VAL]
/// span, matching how Ditto serializes missing values.
std::vector<int64_t> SerializeEntity(const AttrValueList& entity,
                                     const HashingVocab& vocab);

/// \brief Token ids of S(a, b) = [CLS] S(a) [SEP] S(b) [SEP].
std::vector<int64_t> SerializePair(const AttrValueList& a,
                                   const AttrValueList& b,
                                   const HashingVocab& vocab);

/// \brief SerializePair + pad/truncate to `max_len`.
EncodedSequence EncodePair(const AttrValueList& a, const AttrValueList& b,
                           const HashingVocab& vocab, int64_t max_len);

/// \brief Human-readable form of S(a,b) for debugging and examples.
std::string SerializePairToText(const AttrValueList& a, const AttrValueList& b);

}  // namespace dader::text
