#include "text/tokenizer.h"

#include <cctype>

#include "util/check.h"
#include "util/string_util.h"

namespace dader::text {

const char* SpecialTokenName(int64_t id) {
  switch (id) {
    case kPad:
      return "[PAD]";
    case kCls:
      return "[CLS]";
    case kSep:
      return "[SEP]";
    case kAtt:
      return "[ATT]";
    case kVal:
      return "[VAL]";
    case kMask:
      return "[MASK]";
    case kUnk:
      return "[UNK]";
    default:
      return "";
  }
}

std::vector<std::string> WordTokenize(std::string_view raw) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isspace(c)) {
      flush();
    } else if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      // Punctuation: its own single-character token.
      flush();
      out.push_back(std::string(1, ch));
    }
  }
  flush();
  return out;
}

HashingVocab::HashingVocab(int64_t size) : size_(size) {
  DADER_CHECK_GT(size_, static_cast<int64_t>(kNumSpecialTokens));
}

int64_t HashingVocab::TokenId(std::string_view word) const {
  const int64_t usable = size_ - kNumSpecialTokens;
  return kNumSpecialTokens +
         static_cast<int64_t>(Fnv1a64(word) % static_cast<uint64_t>(usable));
}

std::vector<int64_t> HashingVocab::Encode(
    const std::vector<std::string>& words) const {
  std::vector<int64_t> ids;
  ids.reserve(words.size());
  for (const auto& w : words) ids.push_back(TokenId(w));
  return ids;
}

EncodedSequence PadToLength(std::vector<int64_t> ids, int64_t max_len,
                            std::vector<float> overlap) {
  DADER_CHECK_GT(max_len, 0);
  if (overlap.empty()) {
    overlap.assign(ids.size(), 0.0f);
  }
  DADER_CHECK_EQ(overlap.size(), ids.size());
  EncodedSequence out;
  if (static_cast<int64_t>(ids.size()) > max_len) {
    ids.resize(static_cast<size_t>(max_len));
    overlap.resize(static_cast<size_t>(max_len));
  }
  out.num_real = static_cast<int64_t>(ids.size());
  out.ids = std::move(ids);
  out.overlap = std::move(overlap);
  out.mask.assign(static_cast<size_t>(out.num_real), 1.0f);
  out.ids.resize(static_cast<size_t>(max_len), kPad);
  out.overlap.resize(static_cast<size_t>(max_len), 0.0f);
  out.mask.resize(static_cast<size_t>(max_len), 0.0f);
  return out;
}

}  // namespace dader::text
